/**
 * @file
 * Unit tests for the common utilities: RNG determinism and uniformity,
 * statistics registry, table printing, and option parsing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/options.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace acr
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        // Not a hard guarantee, but 100 consecutive collisions across
        // different seeds would indicate a broken generator.
        if (va != c.next())
            return;
    }
    FAIL() << "seeds 42 and 43 produced identical streams";
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo = saw_lo || v == 5;
        saw_hi = saw_hi || v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsRoughlyUniform)
{
    Rng rng(99);
    double sum = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowOneIsZero)
{
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Csprintf, FormatsLikePrintf)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(csprintf("%llu", 18446744073709551615ull),
              "18446744073709551615");
    EXPECT_EQ(csprintf("empty"), "empty");
}

TEST(StatSet, AddGetDefaults)
{
    StatSet s;
    EXPECT_EQ(s.get("missing"), 0.0);
    EXPECT_FALSE(s.has("missing"));
    s.add("a");
    s.add("a", 2.5);
    EXPECT_DOUBLE_EQ(s.get("a"), 3.5);
    EXPECT_TRUE(s.has("a"));
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.add("a", 10);
    s.set("a", 3);
    EXPECT_DOUBLE_EQ(s.get("a"), 3.0);
}

TEST(StatSet, MergeAccumulates)
{
    StatSet a, b;
    a.add("x", 1);
    a.add("y", 2);
    b.add("y", 3);
    b.add("z", 4);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 1);
    EXPECT_DOUBLE_EQ(a.get("y"), 5);
    EXPECT_DOUBLE_EQ(a.get("z"), 4);
}

TEST(StatSet, DiffSubtractsPerName)
{
    StatSet a, b;
    a.add("x", 10);
    b.add("x", 4);
    b.add("y", 1);
    StatSet d = a.diff(b);
    EXPECT_DOUBLE_EQ(d.get("x"), 6);
    EXPECT_DOUBLE_EQ(d.get("y"), -1);
}

TEST(StatSet, ClearZeroesButKeepsNames)
{
    StatSet s;
    s.add("x", 5);
    s.clear();
    EXPECT_TRUE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x"), 0);
}

TEST(StatSet, DumpFiltersByPrefix)
{
    StatSet s;
    s.add("ckpt.records", 3);
    s.add("rec.waste", 7);
    std::ostringstream oss;
    s.dump(oss, "ckpt.");
    EXPECT_NE(oss.str().find("ckpt.records"), std::string::npos);
    EXPECT_EQ(oss.str().find("rec.waste"), std::string::npos);
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(3.14159, 2);
    t.row().cell("b").cell(static_cast<long long>(42));
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream oss;
    t.print(oss);
    EXPECT_NE(oss.str().find("alpha"), std::string::npos);
    EXPECT_NE(oss.str().find("3.14"), std::string::npos);
    EXPECT_NE(oss.str().find("42"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.row().cell("1").cell("2");
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(OptionParser, ParsesTypedOptions)
{
    OptionParser p("test");
    p.addString("name", "def", "a string");
    p.addInt("count", 3, "an int");
    p.addDouble("ratio", 0.5, "a double");
    p.addFlag("verbose", "a flag");

    const char *argv[] = {"test", "--name=xyz", "--count=7",
                          "--ratio=1.25", "--verbose"};
    p.parse(5, argv);
    EXPECT_EQ(p.getString("name"), "xyz");
    EXPECT_EQ(p.getInt("count"), 7);
    EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 1.25);
    EXPECT_TRUE(p.getFlag("verbose"));
}

TEST(OptionParser, DefaultsApply)
{
    OptionParser p("test");
    p.addInt("count", 3, "an int");
    p.addFlag("verbose", "a flag");
    const char *argv[] = {"test"};
    p.parse(1, argv);
    EXPECT_EQ(p.getInt("count"), 3);
    EXPECT_FALSE(p.getFlag("verbose"));
}

TEST(OptionParserDeathTest, UnknownOptionIsFatal)
{
    OptionParser p("test");
    const char *argv[] = {"test", "--nope=1"};
    EXPECT_EXIT(p.parse(2, argv), testing::ExitedWithCode(1), "unknown");
}

TEST(OptionParserDeathTest, BadIntIsFatal)
{
    OptionParser p("test");
    p.addInt("count", 0, "an int");
    const char *argv[] = {"test", "--count=abc"};
    EXPECT_EXIT(p.parse(2, argv), testing::ExitedWithCode(1), "integer");
}

TEST(OptionParserDeathTest, OverflowingIntIsFatalAndNamesTheFlag)
{
    // strtoll clamps out-of-range input to LLONG_MAX and reports via
    // ERANGE; ignoring errno would silently accept the clamp.
    OptionParser p("test");
    p.addInt("retries", 0, "an int");
    const char *argv[] = {"test", "--retries=99999999999999999999"};
    EXPECT_EXIT(p.parse(2, argv), testing::ExitedWithCode(1),
                "retries.*integer");
}

TEST(OptionParserDeathTest, OverflowingDoubleIsFatal)
{
    OptionParser p("test");
    p.addDouble("ratio", 0.0, "a double");
    const char *argv[] = {"test", "--ratio=1e999"};
    EXPECT_EXIT(p.parse(2, argv), testing::ExitedWithCode(1),
                "ratio.*number");
}

TEST(StrictParsers, RejectGarbageOverflowAndSigns)
{
    long long ll = 0;
    EXPECT_TRUE(parseStrictInt("-42", ll));
    EXPECT_EQ(ll, -42);
    EXPECT_FALSE(parseStrictInt("", ll));
    EXPECT_FALSE(parseStrictInt("4x", ll));     // trailing garbage
    EXPECT_FALSE(parseStrictInt(" 4", ll));     // strtoll skips this
    EXPECT_FALSE(parseStrictInt("99999999999999999999", ll));

    unsigned long long ull = 0;
    EXPECT_TRUE(parseStrictUint("18446744073709551615", ull));
    EXPECT_EQ(ull, 18446744073709551615ull);
    // strtoull silently negates "-1" to ULLONG_MAX; sign chars must
    // be rejected outright.
    EXPECT_FALSE(parseStrictUint("-1", ull));
    EXPECT_FALSE(parseStrictUint("+1", ull));
    EXPECT_FALSE(parseStrictUint("1x", ull));
    EXPECT_FALSE(parseStrictUint("18446744073709551616", ull));

    double d = 0.0;
    EXPECT_TRUE(parseStrictDouble("2.5e-3", d));
    EXPECT_DOUBLE_EQ(d, 2.5e-3);
    EXPECT_TRUE(parseStrictDouble("1e-999", d));  // underflow is fine
    EXPECT_FALSE(parseStrictDouble("1e999", d));  // overflow is not
    EXPECT_FALSE(parseStrictDouble("1.5y", d));
    EXPECT_FALSE(parseStrictDouble("", d));
}

TEST(Types, LineGeometry)
{
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(7), 0u);
    EXPECT_EQ(lineOf(8), 1u);
    EXPECT_EQ(lineBase(3), 24u);
    EXPECT_EQ(lineOffset(13), 5u);
    EXPECT_EQ(lineOf(lineBase(42)), 42u);
}

} // namespace
} // namespace acr
