/**
 * @file
 * RecoveryOracle tests: a clean multi-error campaign (overlapping
 * latent windows, errors landing during recovery) validates with zero
 * divergences, and each deliberate-corruption fixture (flip a replayed
 * word, drop an undo record, corrupt the recovered image) produces a
 * structured report — with the right kind and diagnostic fields —
 * instead of an abort. The fixtures arm through the ACR_TEST_* hooks
 * the checkpoint manager reads at construction, so each test sets the
 * environment, runs, and clears it again.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "harness/runner.hh"

namespace
{

using namespace acr;
using namespace acr::harness;

/** RAII environment hook: set on construction, cleared on scope exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

/** The torture default point: ReCkpt, 8 errors against 5 checkpoints
 *  (denser than one per period, so latent windows overlap), detection
 *  latency at half the period. */
ExperimentConfig
campaignConfig(ckpt::Coordination coordination, std::uint64_t seed)
{
    ExperimentConfig config;
    config.mode = BerMode::kReCkpt;
    config.coordination = coordination;
    config.numCheckpoints = 5;
    config.numErrors = 8;
    config.detectionLatencyFraction = 0.5;
    config.sliceThreshold = 0;  // per-workload default
    config.seed = seed;
    config.oracle = true;
    return config;
}

TEST(RecoveryOracle, CleanMultiErrorCampaignHasZeroDivergences)
{
    Runner runner(8);
    std::uint64_t requeued = 0;
    for (std::uint64_t seed = 0xacce55ULL; seed < 0xacce55ULL + 3;
         ++seed) {
        for (auto coordination : {ckpt::Coordination::kGlobal,
                                  ckpt::Coordination::kLocal}) {
            auto result =
                runner.run("is", campaignConfig(coordination, seed));
            EXPECT_EQ(result.oracleDivergences, 0u)
                << "seed " << seed << ":\n"
                << result.oracleReport;
            EXPECT_EQ(result.oracleReport, "");
            EXPECT_GE(result.recoveries, 3u)
                << "the campaign must actually recover repeatedly";
            EXPECT_GT(result.stats.get("oracle.recoveriesChecked"), 0.0);
            EXPECT_GT(result.stats.get("oracle.establishmentsChecked"),
                      0.0);
            requeued += static_cast<std::uint64_t>(
                result.stats.get("fault.requeued"));
        }
    }
    EXPECT_GE(requeued, 1u)
        << "at least one error must land during recovery (rollback "
           "erases it; the injector re-posts it)";
}

TEST(RecoveryOracle, EveryBackendValidatesACleanCampaignDivergenceFree)
{
    // The stores differ only in cost/footprint models; the recovery
    // protocol (and therefore the oracle's checks) is shared, so a
    // clean campaign must validate with zero divergences on every
    // backend — including kReplicated, which forces non-amnesic
    // logging under ReCkpt.
    Runner runner(8);
    for (ckpt::Backend backend : ckpt::allBackends()) {
        auto config =
            campaignConfig(ckpt::Coordination::kGlobal, 0xacce55ULL);
        config.backend = backend;
        auto result = runner.run("is", config);
        EXPECT_EQ(result.oracleDivergences, 0u)
            << ckpt::backendName(backend) << ":\n"
            << result.oracleReport;
        EXPECT_EQ(result.oracleReport, "");
        EXPECT_GE(result.recoveries, 3u)
            << ckpt::backendName(backend)
            << ": the campaign must actually recover repeatedly";
        EXPECT_GT(result.stats.get("oracle.recoveriesChecked"), 0.0);
        EXPECT_GT(result.stats.get("oracle.establishmentsChecked"), 0.0);
    }
}

TEST(RecoveryOracle, CampaignIsSeedDeterministic)
{
    Runner runner(8);
    const auto config =
        campaignConfig(ckpt::Coordination::kGlobal, 0xacce55ULL);
    auto a = runner.run("is", config);
    auto b = runner.run("is", config);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.oracleDivergences, b.oracleDivergences);
    EXPECT_EQ(a.oracleReport, b.oracleReport);
    EXPECT_EQ(a.stats.get("fault.requeued"),
              b.stats.get("fault.requeued"));
}

TEST(RecoveryOracle, ReportsACorruptedRecoveredWord)
{
    // Flip one memory bit right after the rollback restored the image:
    // the oracle must report a memory-word divergence with the address
    // and both values — and the run must complete, not abort.
    ScopedEnv hook("ACR_TEST_CORRUPT_RECOVERY", "1");
    Runner runner(8);
    auto result = runner.run(
        "is", campaignConfig(ckpt::Coordination::kGlobal, 0xacce55ULL));
    ASSERT_GE(result.oracleDivergences, 1u);
    EXPECT_NE(result.oracleReport.find("memory-word"),
              std::string::npos)
        << result.oracleReport;
    EXPECT_NE(result.oracleReport.find("recovery=1"), std::string::npos)
        << result.oracleReport;
    EXPECT_NE(result.oracleReport.find("addr="), std::string::npos);
    EXPECT_NE(result.oracleReport.find("expected="), std::string::npos);
    EXPECT_NE(result.oracleReport.find("actual="), std::string::npos);
}

TEST(RecoveryOracle, ReportsADroppedLogRecord)
{
    // Lose one undo record (with its log bit) before recovery #2
    // applies the logs: the word it should have restored stays at its
    // post-error value, and the oracle attributes the divergence to
    // the originating record's writer.
    ScopedEnv hook("ACR_TEST_DROP_LOG_RECORD", "2");
    Runner runner(8);
    auto result = runner.run(
        "is", campaignConfig(ckpt::Coordination::kGlobal, 0xacce55ULL));
    ASSERT_GE(result.oracleDivergences, 1u);
    EXPECT_NE(result.oracleReport.find("memory-word"),
              std::string::npos)
        << result.oracleReport;
    EXPECT_NE(result.oracleReport.find("recovery=2"), std::string::npos)
        << result.oracleReport;
    EXPECT_NE(result.oracleReport.find("restored by"),
              std::string::npos)
        << "the report must name the originating record: "
        << result.oracleReport;
    EXPECT_NE(result.oracleReport.find("writer="), std::string::npos);
}

TEST(RecoveryOracle, ReportsARecomputeMismatchWithItsSlice)
{
    // Flip the first amnesically replayed value of recovery #1: the
    // manager's assert becomes an oracle report carrying the slice id,
    // the manager heals from the shadow copy, and the rest of the run
    // (including the final-image check) stays clean.
    ScopedEnv hook("ACR_TEST_FLIP_REPLAY", "1");
    Runner runner(8);
    auto result = runner.run(
        "is", campaignConfig(ckpt::Coordination::kGlobal, 0xacce55ULL));
    ASSERT_EQ(result.oracleDivergences, 1u) << result.oracleReport;
    EXPECT_NE(result.oracleReport.find("recompute"), std::string::npos)
        << result.oracleReport;
    EXPECT_NE(result.oracleReport.find("recovery=1"), std::string::npos)
        << result.oracleReport;
    EXPECT_NE(result.oracleReport.find("slice="), std::string::npos)
        << "the diagnostic must carry the originating slice: "
        << result.oracleReport;
    EXPECT_EQ(result.oracleReport.find("final-image"),
              std::string::npos)
        << "healing from the shadow must keep the final image clean";
}

TEST(RecoveryOracle, OffByDefaultAndSilentWhenOff)
{
    Runner runner(8);
    auto config = campaignConfig(ckpt::Coordination::kGlobal,
                                 0xacce55ULL);
    config.oracle = false;
    auto result = runner.run("is", config);
    EXPECT_EQ(result.oracleDivergences, 0u);
    EXPECT_EQ(result.oracleReport, "");
    EXPECT_FALSE(result.stats.has("oracle.recoveriesChecked"));
}

} // namespace
