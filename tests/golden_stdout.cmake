# Rendered-stdout byte lock, run as a ctest: the fig06 bench's full
# workload × mode grid, rendered as CSV, must match the recorded
# seed-engine capture tests/golden/fig06_grid.csv byte-for-byte. This
# is the bench-level half of the differential golden lock
# (perf_equiv_test.cpp is the library-level half): the hot-path
# rewrite's SoA/devirtualization work must not move a single rendered
# byte. Regenerate the capture only for a conscious model change:
#   bench/fig06_time_overhead --format=csv > tests/golden/fig06_grid.csv
#
# Invoke with
#   cmake -DBENCH=<path to fig06_time_overhead>
#         -DGOLDEN=<tests/golden/fig06_grid.csv> -DOUT=<scratch dir>
#         -P golden_stdout.cmake

foreach(var BENCH GOLDEN OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "golden_stdout.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

execute_process(
    COMMAND "${BENCH}" --format=csv
    OUTPUT_FILE "${OUT}/fig06_grid.csv"
    ERROR_FILE "${OUT}/fig06_grid.stderr"
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    file(READ "${OUT}/fig06_grid.stderr" stderr)
    message(FATAL_ERROR "${BENCH} --format=csv exited ${status}:\n"
            "${stderr}")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${GOLDEN}" "${OUT}/fig06_grid.csv"
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "rendered bench stdout diverged from the recorded seed "
            "engine (${GOLDEN} vs ${OUT}/fig06_grid.csv); every byte "
            "of the grid is load-bearing — a hot-path refactor must "
            "not change results, and a conscious model change must "
            "regenerate the capture in the same commit")
endif()

message(STATUS "golden stdout: fig06 grid is byte-identical to the "
               "seed capture")
