/**
 * @file
 * Tests for the textual assembler, including the disassemble→assemble
 * round-trip property over every built-in kernel.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace acr::isa
{
namespace
{

TEST(Assembler, BasicProgram)
{
    auto result = assemble(R"(
        .name basic
        .data 100 42
        movi r1, 100
        load r2, [r1]
        addi r2, r2, 0x10
        store [r1+1], r2
        halt
    )");
    ASSERT_TRUE(result.ok()) << result.errors.front();
    EXPECT_EQ(result.program.name(), "basic");
    EXPECT_EQ(result.program.size(), 5u);
    EXPECT_EQ(result.program.at(2).imm, 16);
    EXPECT_EQ(result.program.data().words.size(), 1u);
}

TEST(Assembler, LabelsForwardAndBackward)
{
    auto result = assemble(R"(
        movi r1, 0
        movi r2, 5
        loop:
        addi r1, r1, 1
        bltu r1, r2, loop
        jmp end
        movi r3, 99
        end: halt
    )");
    ASSERT_TRUE(result.ok()) << result.errors.front();
    EXPECT_EQ(result.program.at(3).imm, 2);  // loop
    EXPECT_EQ(result.program.at(4).imm, 6);  // end
}

TEST(Assembler, AssocAddrCommentSetsTheHint)
{
    auto result = assemble(R"(
        movi r1, 7
        movi r2, 50
        store [r2], r1   ; assoc-addr
        store [r2+1], r1
        halt
    )");
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.program.at(2).sliceHint);
    EXPECT_FALSE(result.program.at(3).sliceHint);
}

TEST(Assembler, NumericBranchTargets)
{
    auto result = assemble(R"(
        movi r1, 1
        beq r1, r0, 0
        halt
    )");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.program.at(1).imm, 0);
}

TEST(Assembler, ReportsErrorsWithLineNumbers)
{
    auto result = assemble("movi r1, 1\nfrobnicate r1\nhalt\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].find("line 2"), std::string::npos);
    EXPECT_NE(result.errors[0].find("frobnicate"), std::string::npos);
}

TEST(Assembler, CatchesBadOperands)
{
    EXPECT_FALSE(assemble("movi r99, 1\nhalt\n").ok());
    EXPECT_FALSE(assemble("addi r1, r2\nhalt\n").ok());
    EXPECT_FALSE(assemble("load r1, r2\nhalt\n").ok());
    EXPECT_FALSE(assemble("jmp nowhere\nhalt\n").ok());
    EXPECT_FALSE(assemble("movi r1, xyz\nhalt\n").ok());
    EXPECT_FALSE(assemble(".data 5\nhalt\n").ok());
}

TEST(Assembler, ValidationRunsOnTheResult)
{
    // Assembles fine syntactically, but writes r0.
    auto result = assemble("addi r0, r1, 1\nhalt\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].find("r0"), std::string::npos);
}

TEST(Assembler, DuplicateLabelRejected)
{
    auto result = assemble("x: movi r1, 1\nx: halt\n");
    EXPECT_FALSE(result.ok());
}

TEST(Assembler, AssembledProgramExecutes)
{
    auto result = assemble(R"(
        .name exec
        tid r1
        movi r2, 4096
        add r2, r2, r1
        movi r3, 0
        movi r4, 10
        loop:
        addi r3, r3, 1
        bltu r3, r4, loop
        store [r2], r3
        barrier
        halt
    )");
    ASSERT_TRUE(result.ok()) << result.errors.front();
    sim::MulticoreSystem sys(sim::MachineConfig::tableI(2),
                             result.program);
    sys.runToCompletion();
    EXPECT_EQ(sys.memory().read(4096), 10u);
    EXPECT_EQ(sys.memory().read(4097), 10u);
}

/** Disassemble → reassemble must reproduce the exact instruction
 *  stream, hints included, for every built-in kernel. */
class RoundTrip : public testing::TestWithParam<std::string>
{
};

TEST_P(RoundTrip, DisassembleAssembleIsIdentity)
{
    workloads::WorkloadParams params;
    params.threads = 4;
    auto program = workloads::makeWorkload(GetParam())->build(params);
    // Mark one store to exercise hint round-tripping.
    for (auto &inst : program.code()) {
        if (isStore(inst.op)) {
            inst.sliceHint = true;
            break;
        }
    }

    std::ostringstream oss;
    program.disassemble(oss);
    auto result = assemble(oss.str(), program.name());
    ASSERT_TRUE(result.ok()) << result.errors.front();
    ASSERT_EQ(result.program.size(), program.size());
    for (std::size_t pc = 0; pc < program.size(); ++pc) {
        EXPECT_EQ(result.program.at(pc), program.at(pc))
            << "pc " << pc << ": " << toString(program.at(pc));
    }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, RoundTrip,
                         testing::ValuesIn(workloads::allWorkloadNames()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace acr::isa
