/**
 * @file
 * End-to-end integration tests over the full stack (workload → slicer →
 * checkpointing → error injection → recovery → verification). Every run
 * here executes with verifyFinalState on, so recovery transparency —
 * the final memory image equals the error-free reference — is asserted
 * inside the runtime itself; the tests add cross-configuration
 * invariants from the paper on top.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

namespace acr::harness
{
namespace
{

/** Shared runner so programs, passes, and baselines are built once. */
Runner &
runner()
{
    static Runner instance(4);
    return instance;
}

ExperimentConfig
config(BerMode mode, unsigned errors = 0,
       ckpt::Coordination coordination = ckpt::Coordination::kGlobal)
{
    ExperimentConfig cfg;
    cfg.mode = mode;
    cfg.numErrors = errors;
    cfg.coordination = coordination;
    cfg.numCheckpoints = 15;
    cfg.sliceThreshold = 0;  // per-workload default
    return cfg;
}

class EveryWorkload : public testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, FourCoreConfigurationsAreTransparentAndOrdered)
{
    const std::string name = GetParam();
    const auto &base = runner().noCkpt(name);
    ASSERT_GT(base.cycles, 0u);

    auto ckpt_ne = runner().run(name, config(BerMode::kCkpt));
    auto reckpt_ne = runner().run(name, config(BerMode::kReCkpt));
    auto ckpt_e = runner().run(name, config(BerMode::kCkpt, 1));
    auto reckpt_e = runner().run(name, config(BerMode::kReCkpt, 1));

    // Checkpointing costs time and energy (Fig. 6/7: all bars > 0).
    EXPECT_GT(ckpt_ne.cycles, base.cycles);
    EXPECT_GT(ckpt_ne.energyPj, base.energyPj);

    // Errors add recovery overhead on top.
    EXPECT_GT(ckpt_e.cycles, ckpt_ne.cycles);
    EXPECT_EQ(ckpt_e.recoveries, 1u);
    EXPECT_EQ(reckpt_e.recoveries, 1u);
    EXPECT_EQ(ckpt_ne.recoveries, 0u);

    // ACR omits recomputable values and shrinks stored checkpoints
    // (Sec. V-C); it never hurts, and the number of checkpoints is
    // schedule-determined, not mode-determined.
    EXPECT_GT(reckpt_ne.ckptBytesOmitted, 0u) << "no omissions at all";
    EXPECT_LT(reckpt_ne.ckptBytesStored, ckpt_ne.ckptBytesStored);
    EXPECT_EQ(reckpt_ne.checkpointsEstablished,
              ckpt_ne.checkpointsEstablished);

    // ACR reduces the time and energy overhead of checkpointing
    // (the paper's headline result; allow a hair of slack for
    // queueing noise on nearly-unsliceable kernels).
    EXPECT_LE(reckpt_ne.cycles, ckpt_ne.cycles * 101 / 100);
    EXPECT_LE(reckpt_e.cycles, ckpt_e.cycles * 101 / 100);
    EXPECT_LE(reckpt_ne.energyPj, ckpt_ne.energyPj * 1.01);

    // The set of omittable values does not depend on the presence of
    // errors (Sec. V-C): interval histories agree up to the first
    // recovery perturbation — compare the first third.
    auto &h_ne = reckpt_ne.history;
    auto &h_e = reckpt_e.history;
    std::size_t n = std::min(h_ne.size(), h_e.size()) / 3;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        EXPECT_EQ(h_ne[i].amnesicRecords, h_e[i].amnesicRecords)
            << "interval " << i;
    }
}

TEST_P(EveryWorkload, AccountingIdentitiesHold)
{
    const std::string name = GetParam();
    auto result = runner().run(name, config(BerMode::kReCkpt, 1));

    // Per-interval bookkeeping sums to the run totals (Eq. 1 pieces).
    std::uint64_t records = 0, amnesic = 0, logged = 0, omitted = 0;
    for (const auto &interval : result.history) {
        records += interval.records;
        amnesic += interval.amnesicRecords;
        logged += interval.loggedBytes;
        omitted += interval.omittedBytes;
        EXPECT_EQ(interval.loggedBytes,
                  (interval.records - interval.amnesicRecords) *
                      ckpt::kLogRecordBytes);
        EXPECT_EQ(interval.omittedBytes,
                  interval.amnesicRecords * ckpt::kLogRecordBytes);
    }
    EXPECT_DOUBLE_EQ(result.stats.get("ckpt.records"),
                     static_cast<double>(records));
    EXPECT_DOUBLE_EQ(result.stats.get("ckpt.amnesicRecords"),
                     static_cast<double>(amnesic));
    EXPECT_DOUBLE_EQ(result.stats.get("ckpt.loggedBytes"),
                     static_cast<double>(logged));
    EXPECT_DOUBLE_EQ(result.stats.get("ckpt.omittedBytes"),
                     static_cast<double>(omitted));
    EXPECT_EQ(result.ckptBytesOmitted, omitted);

    // Recovery accounting: every applied record was either restored
    // from the log or recomputed.
    EXPECT_GT(result.stats.get("rec.recoveries"), 0.0);
    EXPECT_GT(result.stats.get("rec.restoredWords") +
                  result.stats.get("rec.recomputedWords"),
              0.0);
    // Recomputation implies replayed ALU work.
    if (result.stats.get("rec.recomputedWords") > 0)
        EXPECT_GT(result.stats.get("acr.replayAluOps"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, EveryWorkload,
                         testing::ValuesIn(workloads::allWorkloadNames()),
                         [](const auto &info) { return info.param; });

TEST(Integration, LocalCoordinationIsTransparentAndNoSlower)
{
    // dc/is communicate in pairs at most: local coordination must not
    // slow them down (Fig. 13's y <= 1 for them).
    for (const char *name : {"dc", "is"}) {
        auto global =
            runner().run(name, config(BerMode::kCkpt, 0));
        auto local = runner().run(
            name,
            config(BerMode::kCkpt, 0, ckpt::Coordination::kLocal));
        EXPECT_LE(local.cycles, global.cycles) << name;
    }
}

TEST(Integration, LocalRecoveryWithAcrIsTransparent)
{
    for (const char *name : {"dc", "mg"}) {
        auto result = runner().run(
            name,
            config(BerMode::kReCkpt, 2, ckpt::Coordination::kLocal));
        EXPECT_EQ(result.recoveries, 2u) << name;
    }
}

TEST(Integration, MultipleErrorsAllRecovered)
{
    auto result = runner().run("bt", config(BerMode::kReCkpt, 4));
    EXPECT_EQ(result.recoveries, 4u);
    EXPECT_DOUBLE_EQ(result.stats.get("fault.detected"), 4.0);
    EXPECT_DOUBLE_EQ(result.stats.get("fault.dropped"), 0.0);
}

TEST(Integration, MoreErrorsMeanMoreOverhead)
{
    auto one = runner().run("ft", config(BerMode::kCkpt, 1));
    auto three = runner().run("ft", config(BerMode::kCkpt, 3));
    EXPECT_GT(three.cycles, one.cycles) << "Fig. 11's monotone trend";
}

TEST(Integration, MoreCheckpointsMeanMoreOverhead)
{
    auto sparse = runner().run("mg", config(BerMode::kCkpt));
    auto cfg = config(BerMode::kCkpt);
    cfg.numCheckpoints = 60;
    auto dense = runner().run("mg", cfg);
    EXPECT_GT(dense.checkpointsEstablished,
              sparse.checkpointsEstablished);
    EXPECT_GT(dense.cycles, sparse.cycles) << "Fig. 12's monotone trend";
}

TEST(Integration, ThresholdSweepIsMonotoneInOmission)
{
    // Table II's property: higher thresholds never omit less.
    std::uint64_t prev = 0;
    for (unsigned threshold : {10u, 30u, 50u}) {
        auto cfg = config(BerMode::kReCkpt);
        cfg.sliceThreshold = threshold;
        auto result = runner().run("bt", cfg);
        EXPECT_GE(result.ckptBytesOmitted, prev)
            << "threshold " << threshold;
        prev = result.ckptBytesOmitted;
    }
    EXPECT_GT(prev, 0u);
}

TEST(Integration, CostModelPolicyOmitsAtLeastAsMuchAsGreedy)
{
    auto greedy_cfg = config(BerMode::kReCkpt);
    greedy_cfg.sliceThreshold = 10;
    auto greedy = runner().run("lu", greedy_cfg);

    auto cost_cfg = greedy_cfg;
    cost_cfg.policy = slice::SelectionPolicy::kCostModel;
    auto cost = runner().run("lu", cost_cfg);
    EXPECT_GE(cost.ckptBytesOmitted, greedy.ckptBytesOmitted);
}

TEST(Integration, ScalabilityAcrossThreadCounts)
{
    // Sec. V-D4: the reproduction must run at 8 and 16 threads too;
    // checkpoint overhead stays positive and ACR keeps helping.
    for (unsigned threads : {8u, 16u}) {
        Runner wide(threads);
        auto base = wide.noCkpt("is");
        auto ckpt = wide.run("is", config(BerMode::kCkpt));
        auto reckpt = wide.run("is", config(BerMode::kReCkpt));
        EXPECT_GT(ckpt.timeOverheadPct(base.cycles), 0.0);
        EXPECT_LT(reckpt.cycles, ckpt.cycles);
    }
}

TEST(Integration, NoCkptIsCheapestEverywhere)
{
    const auto &base = runner().noCkpt("sp");
    for (auto mode : {BerMode::kCkpt, BerMode::kReCkpt}) {
        auto result = runner().run("sp", config(mode));
        EXPECT_GT(result.cycles, base.cycles);
        EXPECT_GT(result.energyPj, base.energyPj);
        EXPECT_GT(result.edp, base.edp);
    }
}

} // namespace
} // namespace acr::harness
