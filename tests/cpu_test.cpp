/**
 * @file
 * Tests for the core model: functional execution of every instruction
 * class, timing monotonicity, architectural save/restore with bit-exact
 * re-execution, and fault-injection hooks.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "isa/builder.hh"
#include "mem/main_memory.hh"

namespace acr::cpu
{
namespace
{

struct Rig
{
    explicit Rig(isa::Program prog, CoreId id = 0)
        : program(std::move(prog)),
          caches(id + 1, cache::HierarchyConfig{}, mem::DramConfig{}),
          core(id, program, memory, caches, CoreTimingConfig{})
    {
        for (const auto &[addr, value] : program.data().words)
            memory.write(addr, value);
    }

    isa::Program program;  // owned: Core keeps a reference into it
    mem::MainMemory memory;
    cache::CacheSystem caches;
    Core core;
};

isa::Program
sumProgram()
{
    // r1 = 10; r2 = sum(1..10); store to 100; halt
    isa::ProgramBuilder b("sum");
    b.movi(1, 10);
    b.movi(2, 0);
    b.movi(3, 0);
    b.label("loop");
    b.addi(3, 3, 1);
    b.add(2, 2, 3);
    b.bltu(3, 1, "loop");
    b.movi(4, 100);
    b.store(4, 2);
    b.halt();
    return b.build();
}

TEST(Core, ExecutesAProgramToHalt)
{
    auto program = sumProgram();
    Rig rig(program);
    EXPECT_EQ(rig.core.run(100000, nullptr), CoreState::kHalted);
    EXPECT_EQ(rig.memory.read(100), 55u);
    EXPECT_GT(rig.core.cycle(), 0u);
}

TEST(Core, QuantumStopsEarly)
{
    auto program = sumProgram();
    Rig rig(program);
    EXPECT_EQ(rig.core.run(3, nullptr), CoreState::kRunning);
    EXPECT_EQ(rig.core.instrsRetired(), 3u);
}

TEST(Core, LoadsSeeDataSegment)
{
    isa::ProgramBuilder b("loads");
    b.data(500, 77);
    b.movi(1, 500);
    b.load(2, 1);
    b.store(1, 2, 1);  // M[501] = 77
    b.halt();
    Rig rig(b.build());
    rig.core.run(100, nullptr);
    EXPECT_EQ(rig.memory.read(501), 77u);
}

TEST(Core, TidReadsCoreId)
{
    isa::ProgramBuilder b("tid");
    b.tid(1);
    b.movi(2, 600);
    b.store(2, 1);
    b.halt();
    auto program = b.build();
    Rig rig(program, 5);
    rig.core.run(100, nullptr);
    EXPECT_EQ(rig.memory.read(600), 5u);
}

TEST(Core, BarrierParksTheCore)
{
    isa::ProgramBuilder b("barrier");
    b.movi(1, 1);
    b.barrier();
    b.movi(1, 2);
    b.halt();
    Rig rig(b.build());
    EXPECT_EQ(rig.core.run(100, nullptr), CoreState::kAtBarrier);
    EXPECT_EQ(rig.core.reg(1), 1u);
    EXPECT_EQ(rig.core.barrierEpoch(), 0u);

    // Running while parked is a no-op.
    EXPECT_EQ(rig.core.run(100, nullptr), CoreState::kAtBarrier);

    rig.core.releaseBarrier(rig.core.cycle() + 10);
    EXPECT_EQ(rig.core.barrierEpoch(), 1u);
    EXPECT_EQ(rig.core.run(100, nullptr), CoreState::kHalted);
    EXPECT_EQ(rig.core.reg(1), 2u);
}

TEST(Core, ObserverSeesStoresWithOldValues)
{
    struct Capture : ExecObserver
    {
        std::vector<InstrEvent> stores;
        void
        onInstr(const InstrEvent &e) override
        {
            if (isa::isStore(e.inst->op))
                stores.push_back(e);
        }
    } capture;

    isa::ProgramBuilder b("stores");
    b.movi(1, 700);
    b.movi(2, 11);
    b.store(1, 2);
    b.movi(2, 22);
    b.store(1, 2);
    b.halt();
    Rig rig(b.build());
    rig.core.run(100, &capture);

    ASSERT_EQ(capture.stores.size(), 2u);
    EXPECT_EQ(capture.stores[0].addr, 700u);
    EXPECT_EQ(capture.stores[0].result, 11u);
    EXPECT_EQ(capture.stores[0].oldValue, 0u);
    EXPECT_EQ(capture.stores[1].result, 22u);
    EXPECT_EQ(capture.stores[1].oldValue, 11u);
}

TEST(Core, SaveRestoreReExecutesIdentically)
{
    auto program = sumProgram();
    Rig rig(program);
    rig.core.run(5, nullptr);
    ArchState snap = rig.core.saveArch();
    Cycle cycle_at_snap = rig.core.cycle();

    rig.core.run(100000, nullptr);
    Word final_r2 = rig.core.reg(2);

    // Roll back and replay: registers and results must reproduce.
    rig.core.restoreArch(snap);
    EXPECT_EQ(rig.core.saveArch(), snap);
    rig.core.setCycle(std::max(rig.core.cycle(), cycle_at_snap + 999));
    rig.core.run(100000, nullptr);
    EXPECT_EQ(rig.core.reg(2), final_r2);
    EXPECT_EQ(rig.core.state(), CoreState::kHalted);
}

TEST(Core, ClockNeverMovesBackwards)
{
    auto program = sumProgram();
    Rig rig(program);
    rig.core.run(10, nullptr);
    Cycle c = rig.core.cycle();
    rig.core.setCycle(c + 5);
    EXPECT_EQ(rig.core.cycle(), c + 5);
    EXPECT_DEATH(rig.core.setCycle(c), "backwards");
}

TEST(Core, CorruptionFlipsExactlyOneResult)
{
    isa::ProgramBuilder b("corrupt");
    b.movi(1, 5);
    b.movi(2, 5);
    b.movi(3, 800);
    b.store(3, 1);
    b.store(3, 2, 1);
    b.halt();
    Rig rig(b.build());

    rig.core.run(1, nullptr);  // movi r1 done, clean
    rig.core.scheduleCorruption(0xff);
    EXPECT_TRUE(rig.core.corruptionPending());
    rig.core.run(100, nullptr);
    EXPECT_FALSE(rig.core.corruptionPending());
    EXPECT_TRUE(rig.core.takeCorruptionEvent().has_value());
    EXPECT_FALSE(rig.core.takeCorruptionEvent().has_value())
        << "event is consumed on read";

    // r2's movi was corrupted; r1 was not.
    EXPECT_EQ(rig.memory.read(800), 5u);
    EXPECT_EQ(rig.memory.read(801), 5u ^ 0xffu);
}

TEST(Core, RestoreCancelsPendingCorruption)
{
    auto program = sumProgram();
    Rig rig(program);
    ArchState snap = rig.core.saveArch();
    rig.core.scheduleCorruption(1);
    rig.core.restoreArch(snap);
    EXPECT_FALSE(rig.core.corruptionPending());
}

TEST(Core, TimingChargesMemoryStalls)
{
    // A long strided walk misses a lot; cycles must exceed the pure
    // issue-bound minimum.
    isa::ProgramBuilder b("strides");
    b.movi(1, 0);
    b.movi(2, 4096);
    b.label("loop");
    b.load(3, 1);
    b.addi(1, 1, 8);
    b.bltu(1, 2, "loop");
    b.halt();
    Rig rig(b.build());
    rig.core.run(1u << 20, nullptr);
    EXPECT_GT(rig.core.counters().memStallCycles, 0u);
    EXPECT_GT(rig.core.cycle(),
              rig.core.instrsRetired() / 4)
        << "4-issue lower bound";
}

TEST(Core, CountersClassifyInstructions)
{
    auto program = sumProgram();
    Rig rig(program);
    rig.core.run(100000, nullptr);
    const CoreCounters &c = rig.core.counters();
    EXPECT_EQ(c.stores, 1u);
    EXPECT_EQ(c.branches, 10u);
    EXPECT_EQ(c.instrs, c.aluOps + c.loads + c.stores + c.branches +
                            c.barriers + 1 /*halt*/);

    StatSet stats;
    rig.core.exportStats(stats, "core0");
    EXPECT_DOUBLE_EQ(stats.get("core0.stores"), 1.0);
}

} // namespace
} // namespace acr::cpu
