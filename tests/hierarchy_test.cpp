/**
 * @file
 * Tests for the CacheSystem: cross-hierarchy coherence actions, dirty
 * line bookkeeping, checkpoint flushes, and the interaction patterns
 * local checkpointing depends on.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace acr::cache
{
namespace
{

CacheSystem
makeSystem(unsigned cores = 4)
{
    HierarchyConfig hier;
    mem::DramConfig dram;
    dram.controllers = mem::DramConfig::controllersFor(cores);
    return CacheSystem(cores, hier, dram);
}

TEST(CacheSystem, L1HitIsCheapMissPaysDram)
{
    auto sys = makeSystem();
    Cycle miss = sys.dataAccess(0, 100, false, 0);
    Cycle hit = sys.dataAccess(0, 100, false, miss) - miss;
    EXPECT_GT(miss, sys.config().l2.latency);
    EXPECT_EQ(hit, sys.config().l1d.latency);
}

TEST(CacheSystem, WriteDirtiesTheLine)
{
    auto sys = makeSystem();
    sys.dataAccess(0, 100, true, 0);
    EXPECT_EQ(sys.dirtyLineCount(0), 1u);
    EXPECT_TRUE(sys.l1d(0).isDirty(lineOf(100)));
}

TEST(CacheSystem, RemoteWriteInvalidatesSharers)
{
    auto sys = makeSystem();
    sys.dataAccess(0, 100, false, 0);
    sys.dataAccess(1, 100, false, 0);
    EXPECT_TRUE(sys.l1d(0).contains(lineOf(100)));

    sys.dataAccess(2, 100, true, 0);
    EXPECT_FALSE(sys.l1d(0).contains(lineOf(100)));
    EXPECT_FALSE(sys.l1d(1).contains(lineOf(100)));
    EXPECT_EQ(sys.directory().owner(lineOf(100)), 2u);
}

TEST(CacheSystem, RemoteReadDowngradesDirtyOwner)
{
    auto sys = makeSystem();
    sys.dataAccess(0, 100, true, 0);
    EXPECT_TRUE(sys.l1d(0).isDirty(lineOf(100)));

    sys.dataAccess(1, 100, false, 0);
    // Owner keeps a clean copy; reader has it too.
    EXPECT_TRUE(sys.l1d(0).contains(lineOf(100)));
    EXPECT_FALSE(sys.l1d(0).isDirty(lineOf(100)));
    EXPECT_FALSE(sys.l2(0).isDirty(lineOf(100)));
}

TEST(CacheSystem, DirtyLinesUnionL1AndL2)
{
    auto sys = makeSystem();
    // Dirty a lot of lines in one set region so some spill to L2 only.
    for (Addr a = 0; a < 64 * kWordsPerLine; a += kWordsPerLine)
        sys.dataAccess(0, a, true, 0);
    auto dirty = sys.dirtyLines(0);
    EXPECT_EQ(dirty.size(), 64u) << "every written line is dirty "
                                    "somewhere in the hierarchy";
}

TEST(CacheSystem, FlushCleansAndCounts)
{
    auto sys = makeSystem();
    sys.dataAccess(0, 0, true, 0);
    sys.dataAccess(0, 8, true, 0);
    sys.dataAccess(1, 16, true, 0);

    auto flush = sys.flushCores(0b01, 100);
    EXPECT_EQ(flush.lines, 2u);
    EXPECT_GT(flush.done, 100u);
    EXPECT_EQ(sys.dirtyLineCount(0), 0u);
    EXPECT_EQ(sys.dirtyLineCount(1), 1u) << "core 1 not flushed";
    // Clean copies remain resident.
    EXPECT_TRUE(sys.l1d(0).contains(0));
}

TEST(CacheSystem, InvalidateCoresDropsEverything)
{
    auto sys = makeSystem();
    sys.dataAccess(0, 0, true, 0);
    sys.dataAccess(1, 8, true, 0);
    sys.invalidateCores(0b01);
    EXPECT_FALSE(sys.l1d(0).contains(0));
    EXPECT_TRUE(sys.l1d(1).contains(1));
    EXPECT_EQ(sys.directory().owner(0), kInvalidCore);
    EXPECT_EQ(sys.directory().owner(1), 1u);
}

TEST(CacheSystem, FalseSharingCreatesInteractions)
{
    auto sys = makeSystem();
    // Same line, different words: still an interaction (line granular).
    sys.dataAccess(0, 0, true, 0);
    sys.dataAccess(1, 1, false, 0);
    EXPECT_TRUE(sys.directory().interactions(0) & 0b10u);
}

TEST(CacheSystem, PaddedSlotsKeepThreadsIndependent)
{
    auto sys = makeSystem();
    // One line per core: no cross-core interactions.
    for (CoreId c = 0; c < 4; ++c)
        sys.dataAccess(c, c * kWordsPerLine, true, 0);
    auto groups = sys.directory().communicationGroups();
    EXPECT_EQ(groups.size(), 4u);
}

TEST(CacheSystem, ExportStatsAggregates)
{
    auto sys = makeSystem();
    sys.dataAccess(0, 0, true, 0);
    sys.dataAccess(0, 0, false, 0);
    sys.fetch(0);
    sys.fetch(1);
    StatSet stats;
    sys.exportStats(stats);
    EXPECT_DOUBLE_EQ(stats.get("l1d.hits"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("l1d.misses"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("l1i.fetches"), 2.0);
}

TEST(CacheSystem, WriteMissFilledByRemoteDirtyCopyAvoidsDram)
{
    auto sys = makeSystem();
    sys.dataAccess(0, 100, true, 0);
    auto reads_before = sys.dram().counters().reads;
    sys.dataAccess(1, 100, true, 0);  // cache-to-cache transfer
    EXPECT_EQ(sys.dram().counters().reads, reads_before);
}

} // namespace
} // namespace acr::cache
