# Bounded torture smoke, run as a ctest (and mirrored by the CI
# torture-smoke job). Drives the torture bench on a small campaign and
# checks the three properties the recovery oracle promises:
#
#   1. A clean multi-error campaign (overlapping latent windows, errors
#      landing during recovery) reports zero divergences and exits 0,
#      byte-identically across --jobs=1 and --jobs=8.
#   2. An injected oracle violation (ACR_TEST_CORRUPT_RECOVERY) turns
#      into a structured diagnostic plus a shrunk minimal-FaultPlan
#      repro line — and a nonzero exit — instead of an abort.
#   3. The campaign knobs reach the run through the environment path
#      (ACR_TORTURE_* shares the flags' strict parser).
#
# Invoke with
#   cmake -DBENCH=<path to torture> -DOUT=<scratch dir>
#         -P torture_smoke.cmake

foreach(var BENCH OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "torture_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

# Small grid: one workload, both modes, global coordination, one
# latency, two seeds — overlap regime (8 errors vs 5 checkpoints).
set(campaign
    --workloads=is --modes=ckpt,reckpt --coords=global,local
    --lats=0.5 --errors=8 --checkpoints=5 --seeds=2 --oracle=on)

function(run_torture output expect_status)
    execute_process(
        COMMAND "${BENCH}" ${campaign} ${ARGN}
        OUTPUT_FILE "${output}"
        ERROR_FILE "${output}.stderr"
        RESULT_VARIABLE status)
    if(NOT status EQUAL ${expect_status})
        file(READ "${output}.stderr" stderr)
        message(FATAL_ERROR
                "${BENCH} ${ARGN}: expected exit ${expect_status}, "
                "got ${status}:\n${stderr}")
    endif()
endfunction()

# 1. Clean campaign, deterministic across parallelism.
run_torture("${OUT}/jobs1.txt" 0 --jobs=1)
run_torture("${OUT}/jobs8.txt" 0 --jobs=8)
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${OUT}/jobs1.txt" "${OUT}/jobs8.txt"
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "torture --jobs=1 and --jobs=8 rendered different output")
endif()
file(READ "${OUT}/jobs1.txt" clean)
if(NOT clean MATCHES "0 divergences")
    message(FATAL_ERROR
            "clean campaign did not report zero divergences:\n${clean}")
endif()

# 2. Injected oracle violation: structured report + shrunk repro,
#    exit 4 (the torture verdict), no abort.
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env ACR_TEST_CORRUPT_RECOVERY=1
            "${BENCH}" ${campaign} --modes=reckpt --coords=global
            --seeds=1 --jobs=1
    OUTPUT_FILE "${OUT}/violation.txt"
    ERROR_FILE "${OUT}/violation.stderr"
    RESULT_VARIABLE status)
if(NOT status EQUAL 4)
    message(FATAL_ERROR
            "injected violation: expected exit 4, got ${status}")
endif()
file(READ "${OUT}/violation.stderr" stderr)
if(NOT stderr MATCHES "\\[oracle\\] memory-word")
    message(FATAL_ERROR
            "no structured memory-word diagnostic:\n${stderr}")
endif()
if(NOT stderr MATCHES "\\[torture\\] repro: torture ")
    message(FATAL_ERROR "no shrunk repro line:\n${stderr}")
endif()
if(NOT stderr MATCHES "--event-mask=")
    message(FATAL_ERROR
            "repro line carries no shrunk event mask:\n${stderr}")
endif()

# 3. Environment path: ACR_TORTURE_ERRORS must flow through the same
#    strict parser as --errors (a bad value dies with a parse error,
#    a good one shows up in the rendered header).
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env ACR_TORTURE_ERRORS=nope
            "${BENCH}" ${campaign} --jobs=1
    OUTPUT_QUIET
    ERROR_VARIABLE stderr
    RESULT_VARIABLE status)
if(status EQUAL 0)
    message(FATAL_ERROR "ACR_TORTURE_ERRORS=nope was accepted")
endif()
if(NOT stderr MATCHES "ACR_TORTURE_ERRORS")
    message(FATAL_ERROR
            "parse error does not name the variable:\n${stderr}")
endif()

message(STATUS "torture smoke: clean campaign deterministic, "
               "violation reported and shrunk, env path strict")
