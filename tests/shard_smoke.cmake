# End-to-end sharding determinism check, run as a ctest (and mirrored
# by the CI sharded-smoke job). Given a bench binary (-DBENCH=...) and
# a workload subset (-DWORKLOADS=...), verifies the BenchMain
# determinism contract: the rendered stdout of
#
#   --jobs=1                                (reference)
#   --shard=0/2 + --shard=1/2 --> --merge   (static sharding)
#   --forks=2                               (forked local workers)
#
# is byte-identical. Invoke with
#   cmake -DBENCH=<path> -DWORKLOADS=<a,b> -DOUT=<scratch dir>
#         -P shard_smoke.cmake

foreach(var BENCH WORKLOADS OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "shard_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

function(run_bench output)
    execute_process(
        COMMAND "${BENCH}" "--workloads=${WORKLOADS}" ${ARGN}
        OUTPUT_FILE "${output}"
        ERROR_VARIABLE stderr
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR
                "${BENCH} ${ARGN} failed (${status}):\n${stderr}")
    endif()
endfunction()

function(expect_identical reference candidate what)
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${reference}" "${candidate}"
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR
                "${what} output differs from the --jobs=1 reference "
                "(${reference} vs ${candidate})")
    endif()
endfunction()

run_bench("${OUT}/reference.txt" --jobs=1)

run_bench("${OUT}/shard0.ndjson" --shard=0/2 --jobs=2)
run_bench("${OUT}/shard1.ndjson" --shard=1/2 --jobs=2)
run_bench("${OUT}/merged.txt"
          "--merge=${OUT}/shard0.ndjson,${OUT}/shard1.ndjson")
expect_identical("${OUT}/reference.txt" "${OUT}/merged.txt"
                 "sharded (--shard + --merge)")

run_bench("${OUT}/forked.txt" --forks=2)
expect_identical("${OUT}/reference.txt" "${OUT}/forked.txt"
                 "forked (--forks=2)")

message(STATUS "shard smoke: sharded and forked output byte-identical")
