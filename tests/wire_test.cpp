/**
 * @file
 * Wire-format tests: every ExperimentConfig/ExperimentResult field
 * survives encode → decode → encode byte-stably (randomized property
 * over the whole configuration space), StatSet merge/diff identities
 * hold across the wire, record lines carry and enforce the version
 * envelope, and ExperimentConfig::validate() names the offending field
 * for each documented invalid combination.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/serde.hh"
#include "harness/runner.hh"
#include "harness/wire.hh"

namespace
{

using namespace acr;
using namespace acr::harness;
using serde::SerdeError;

ExperimentConfig
randomConfig(std::mt19937_64 &rng)
{
    auto pick = [&](std::uint64_t bound) { return rng() % bound; };

    ExperimentConfig config;
    config.mode = static_cast<BerMode>(pick(3));
    config.coordination = static_cast<ckpt::Coordination>(pick(2));
    config.numCheckpoints = 1 + static_cast<unsigned>(pick(100));
    config.numErrors = static_cast<unsigned>(pick(6));
    config.sliceThreshold = static_cast<unsigned>(pick(51));
    config.policy = static_cast<slice::SelectionPolicy>(pick(2));
    config.addrMapRetention = static_cast<unsigned>(pick(3));
    config.detectionLatencyFraction = pick(101) / 100.0;
    config.placement = static_cast<PlacementPolicy>(pick(2));
    config.placementSlack = pick(101) / 100.0;
    config.secondaryPeriod = static_cast<unsigned>(pick(5));
    config.seed = rng();
    config.verifyFinalState = pick(2) == 0;
    config.oracle = config.mode != BerMode::kNoCkpt && pick(2) == 0;
    config.faultEventMask = pick(2) == 0 ? ~std::uint64_t{0} : rng() | 1;
    // NoCkpt stores nothing, so only checkpointing modes vary the
    // backend or take storage faults (matches
    // ExperimentConfig::validate()).
    config.backend = config.mode == BerMode::kNoCkpt
                         ? ckpt::Backend::kLog
                         : static_cast<ckpt::Backend>(pick(3));
    config.storageErrors = config.mode == BerMode::kNoCkpt
                               ? 0
                               : static_cast<unsigned>(pick(5));
    config.storageFaultMask =
        pick(2) == 0 ? ~std::uint64_t{0} : rng() | 1;
    return config;
}

ExperimentResult
randomResult(std::mt19937_64 &rng)
{
    auto pick = [&](std::uint64_t bound) { return rng() % bound; };

    ExperimentResult result;
    result.cycles = rng();
    result.energyPj = pick(1u << 30) / 16.0;
    result.edp = pick(1u << 30) * 1024.0;
    result.checkpointsEstablished = pick(100);
    result.recoveries = pick(10);
    result.oracleDivergences = pick(4);
    if (result.oracleDivergences > 0)
        result.oracleReport =
            "[oracle] memory-word recovery=1 addr=42 expected=7 actual=9";
    result.unrecoverable = pick(4) == 0;
    if (result.unrecoverable)
        result.unrecoverableDetail =
            "no intact rollback target for the affected cores";
    result.ckptBytesStored = rng();
    result.ckptBytesOmitted = rng();
    result.stats.set("ckpt.logRecords", pick(1u << 20));
    result.stats.set("acr.replayAluOps", pick(1u << 20) / 4.0);
    result.stats.set("dram.lineWrites", pick(1u << 20));
    const std::size_t intervals = pick(5);
    for (std::size_t i = 0; i < intervals; ++i) {
        ckpt::IntervalSizes sizes;
        sizes.interval = i;
        sizes.records = pick(1000);
        sizes.amnesicRecords = pick(1000);
        sizes.loggedBytes = pick(1u << 20);
        sizes.omittedBytes = pick(1u << 20);
        sizes.flushedLines = pick(1000);
        sizes.archBytes = pick(1u << 16);
        result.history.push_back(sizes);
    }
    return result;
}

void
expectConfigEqual(const ExperimentConfig &a, const ExperimentConfig &b)
{
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.coordination, b.coordination);
    EXPECT_EQ(a.numCheckpoints, b.numCheckpoints);
    EXPECT_EQ(a.numErrors, b.numErrors);
    EXPECT_EQ(a.sliceThreshold, b.sliceThreshold);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.addrMapRetention, b.addrMapRetention);
    EXPECT_EQ(a.detectionLatencyFraction, b.detectionLatencyFraction);
    EXPECT_EQ(a.placement, b.placement);
    EXPECT_EQ(a.placementSlack, b.placementSlack);
    EXPECT_EQ(a.secondaryPeriod, b.secondaryPeriod);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.verifyFinalState, b.verifyFinalState);
    EXPECT_EQ(a.oracle, b.oracle);
    EXPECT_EQ(a.faultEventMask, b.faultEventMask);
    EXPECT_EQ(a.backend, b.backend);
    EXPECT_EQ(a.storageErrors, b.storageErrors);
    EXPECT_EQ(a.storageFaultMask, b.storageFaultMask);
    EXPECT_EQ(b.trace, nullptr);
}

TEST(WireConfig, RoundTripProperty)
{
    std::mt19937_64 rng(0xacce55);
    for (int i = 0; i < 200; ++i) {
        const ExperimentConfig config = randomConfig(rng);
        const std::string encoded = wire::encodeConfig(config).dump();
        const ExperimentConfig decoded =
            wire::decodeConfig(serde::Json::parse(encoded));
        expectConfigEqual(config, decoded);
        // Byte-stable re-encode: the merge-determinism substrate.
        EXPECT_EQ(wire::encodeConfig(decoded).dump(), encoded);
    }
}

TEST(WireConfig, TraceSinkCannotCrossProcessBoundary)
{
    EventTrace trace;
    ExperimentConfig config;
    config.trace = &trace;
    EXPECT_THROW(wire::encodeConfig(config), SerdeError);
}

TEST(WireConfig, RejectsUnknownKeyAndBadEnums)
{
    const std::string good = wire::encodeConfig({}).dump();
    // Splice an unknown key into an otherwise valid config object.
    std::string unknown = good;
    unknown.insert(unknown.size() - 1, ",\"novel\":1");
    EXPECT_THROW(wire::decodeConfig(serde::Json::parse(unknown)),
                 SerdeError);

    serde::Json bad_mode = wire::encodeConfig({});
    const std::string bad =
        [&] {
            std::string text = bad_mode.dump();
            const std::string from = "\"mode\":\"Ckpt\"";
            return text.replace(text.find(from), from.size(),
                                "\"mode\":\"Chkpt\"");
        }();
    EXPECT_THROW(wire::decodeConfig(serde::Json::parse(bad)),
                 SerdeError);

    // An unknown backend name must be rejected the same way (a shard
    // from a build with more backends must not be silently misread).
    const std::string bad_backend =
        [&] {
            std::string text = good;
            const std::string from = "\"backend\":\"log\"";
            return text.replace(text.find(from), from.size(),
                                "\"backend\":\"tape\"");
        }();
    EXPECT_THROW(wire::decodeConfig(serde::Json::parse(bad_backend)),
                 SerdeError);
}

TEST(WireResult, RoundTripProperty)
{
    std::mt19937_64 rng(0x5eed);
    for (int i = 0; i < 200; ++i) {
        const ExperimentResult result = randomResult(rng);
        const std::string encoded = wire::encodeResult(result).dump();
        const ExperimentResult decoded =
            wire::decodeResult(serde::Json::parse(encoded));

        EXPECT_EQ(result.cycles, decoded.cycles);
        EXPECT_EQ(result.energyPj, decoded.energyPj);
        EXPECT_EQ(result.edp, decoded.edp);
        EXPECT_EQ(result.checkpointsEstablished,
                  decoded.checkpointsEstablished);
        EXPECT_EQ(result.recoveries, decoded.recoveries);
        EXPECT_EQ(result.unrecoverable, decoded.unrecoverable);
        EXPECT_EQ(result.unrecoverableDetail,
                  decoded.unrecoverableDetail);
        EXPECT_EQ(result.ckptBytesStored, decoded.ckptBytesStored);
        EXPECT_EQ(result.ckptBytesOmitted, decoded.ckptBytesOmitted);
        EXPECT_EQ(result.stats.all(), decoded.stats.all());
        ASSERT_EQ(result.history.size(), decoded.history.size());
        for (std::size_t h = 0; h < result.history.size(); ++h) {
            EXPECT_EQ(result.history[h].interval,
                      decoded.history[h].interval);
            EXPECT_EQ(result.history[h].records,
                      decoded.history[h].records);
            EXPECT_EQ(result.history[h].amnesicRecords,
                      decoded.history[h].amnesicRecords);
            EXPECT_EQ(result.history[h].loggedBytes,
                      decoded.history[h].loggedBytes);
            EXPECT_EQ(result.history[h].omittedBytes,
                      decoded.history[h].omittedBytes);
            EXPECT_EQ(result.history[h].flushedLines,
                      decoded.history[h].flushedLines);
            EXPECT_EQ(result.history[h].archBytes,
                      decoded.history[h].archBytes);
        }
        EXPECT_EQ(wire::encodeResult(decoded).dump(), encoded);
    }
}

TEST(WireStats, MergeDiffIdentitiesSurviveTheWire)
{
    std::mt19937_64 rng(7);
    for (int i = 0; i < 50; ++i) {
        StatSet a, b;
        a.set("x", static_cast<double>(rng() % 1000));
        a.set("shared", static_cast<double>(rng() % 1000));
        b.set("y", static_cast<double>(rng() % 1000) / 8.0);
        b.set("shared", static_cast<double>(rng() % 1000));

        auto wired = [](const StatSet &stats) {
            return wire::decodeStats(
                serde::Json::parse(wire::encodeStats(stats).dump()));
        };

        // merge then diff gives the original back, on both sides of
        // the wire.
        StatSet merged = wired(a);
        merged.merge(wired(b));
        EXPECT_EQ(wire::encodeStats(merged.diff(b)).dump(),
                  wire::encodeStats(wired(a).diff(b.diff(b))).dump());
        EXPECT_EQ(merged.get("shared"),
                  a.get("shared") + b.get("shared"));

        // Map-ordered canonical encoding is stable.
        EXPECT_EQ(wire::encodeStats(wired(a)).dump(),
                  wire::encodeStats(a).dump());
    }
}

TEST(WireRecords, LineRoundTripAndTags)
{
    std::mt19937_64 rng(11);

    wire::PointRecord point{42, {"is", randomConfig(rng), 16}};
    const std::string point_line = wire::encodePointLine(point);
    wire::Record decoded = wire::decodeLine(point_line);
    ASSERT_EQ(decoded.type, wire::Record::Type::kPoint);
    EXPECT_EQ(decoded.point.index, 42u);
    EXPECT_EQ(decoded.point.point.workload, "is");
    EXPECT_EQ(decoded.point.point.threads, 16u);
    expectConfigEqual(point.point.config, decoded.point.point.config);
    EXPECT_EQ(wire::encodePointLine(decoded.point), point_line);

    wire::ResultRecord result{7, randomResult(rng)};
    const std::string result_line = wire::encodeResultLine(result);
    decoded = wire::decodeLine(result_line);
    ASSERT_EQ(decoded.type, wire::Record::Type::kResult);
    EXPECT_EQ(decoded.result.index, 7u);
    EXPECT_EQ(wire::encodeResultLine(decoded.result), result_line);

    wire::ManifestRecord manifest{"fig06", 1, 2, 70, 0xfeedface};
    const std::string manifest_line =
        wire::encodeManifestLine(manifest);
    decoded = wire::decodeLine(manifest_line);
    ASSERT_EQ(decoded.type, wire::Record::Type::kManifest);
    EXPECT_EQ(decoded.manifest.bench, "fig06");
    EXPECT_EQ(decoded.manifest.shard, 1u);
    EXPECT_EQ(decoded.manifest.shardCount, 2u);
    EXPECT_EQ(decoded.manifest.gridPoints, 70u);
    EXPECT_EQ(decoded.manifest.gridHash, 0xfeedfaceu);
    EXPECT_EQ(wire::encodeManifestLine(decoded.manifest),
              manifest_line);
}

TEST(WireRecords, VersionAndTypeEnforced)
{
    const std::string line = wire::encodePointLine({0, {"bt", {}, 8}});

    std::string wrong_version = line;
    const std::string v =
        "{\"v\":" + std::to_string(wire::kVersion);
    wrong_version.replace(wrong_version.find(v), v.size(),
                          "{\"v\":999");
    EXPECT_THROW(wire::decodeLine(wrong_version), SerdeError);

    std::string wrong_type = line;
    const std::string t = "\"type\":\"point\"";
    wrong_type.replace(wrong_type.find(t), t.size(),
                       "\"type\":\"telemetry\"");
    EXPECT_THROW(wire::decodeLine(wrong_type), SerdeError);

    EXPECT_THROW(wire::decodeLine("not json"), SerdeError);
    EXPECT_THROW(wire::decodeLine("[1,2,3]"), SerdeError);
}

TEST(WireGridHash, SensitiveToEveryAxis)
{
    std::vector<GridPoint> grid = {{"bt", {}, 8}, {"is", {}, 8}};
    const std::uint64_t base = wire::gridHash(grid);
    EXPECT_EQ(wire::gridHash(grid), base);  // deterministic

    auto reordered = grid;
    std::swap(reordered[0], reordered[1]);
    EXPECT_NE(wire::gridHash(reordered), base);

    auto retuned = grid;
    retuned[1].config.numCheckpoints += 1;
    EXPECT_NE(wire::gridHash(retuned), base);

    auto rescaled = grid;
    rescaled[0].threads = 32;
    EXPECT_NE(wire::gridHash(rescaled), base);

    auto shrunk = grid;
    shrunk.pop_back();
    EXPECT_NE(wire::gridHash(shrunk), base);
}

TEST(ConfigValidate, AcceptsTheDefaultMatrix)
{
    EXPECT_EQ(ExperimentConfig{}.validate(), "");
    ExperimentConfig reckpt;
    reckpt.mode = BerMode::kReCkpt;
    reckpt.numErrors = 5;
    reckpt.placement = PlacementPolicy::kRecomputeAware;
    EXPECT_EQ(reckpt.validate(), "");
}

TEST(ConfigValidate, NamesTheOffendingField)
{
    auto expectNames = [](const ExperimentConfig &config,
                          const std::string &field) {
        const std::string error = config.validate();
        ASSERT_FALSE(error.empty()) << "expected a " << field
                                    << " error";
        EXPECT_NE(error.find(field), std::string::npos) << error;
    };

    ExperimentConfig config;
    config.detectionLatencyFraction = 1.5;
    expectNames(config, "detectionLatencyFraction");
    config.detectionLatencyFraction = -0.1;
    expectNames(config, "detectionLatencyFraction");

    config = {};
    config.placement = PlacementPolicy::kRecomputeAware;
    config.mode = BerMode::kCkpt;
    expectNames(config, "placement");

    config = {};
    config.sliceThreshold = 0;
    expectNames(config, "sliceThreshold");

    config = {};
    config.mode = BerMode::kNoCkpt;
    config.numErrors = 1;
    expectNames(config, "numErrors");

    config = {};
    config.placementSlack = 1.01;
    expectNames(config, "placementSlack");

    config = {};
    config.mode = BerMode::kNoCkpt;
    config.oracle = true;
    expectNames(config, "oracle");

    config = {};
    config.numErrors = 3;
    config.faultEventMask = 0;
    expectNames(config, "faultEventMask");

    config = {};
    config.mode = BerMode::kNoCkpt;
    config.backend = ckpt::Backend::kNvm;
    expectNames(config, "backend");

    config = {};
    config.mode = BerMode::kNoCkpt;
    config.storageErrors = 2;
    expectNames(config, "storageErrors");

    config = {};
    config.storageErrors = 2;
    config.storageFaultMask = 0;
    expectNames(config, "storageFaultMask");
}

TEST(ConfigValidate, RunnerRejectsInvalidConfigs)
{
    Runner runner(2);
    ExperimentConfig config;
    config.mode = BerMode::kNoCkpt;
    config.numErrors = 3;
    EXPECT_EXIT(runner.run("bt", config),
                testing::ExitedWithCode(1), "numErrors");
}

} // namespace
