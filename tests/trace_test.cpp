/**
 * @file
 * Tests for the event-trace timeline and its runtime integration.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/trace.hh"
#include "harness/runner.hh"

namespace acr
{
namespace
{

TEST(EventTrace, RecordsSpansAndInstants)
{
    EventTrace trace;
    trace.span("ckpt", "ckpt 1", 100, 150);
    trace.instant("fault", "error", 120);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_FALSE(trace.events()[0].isInstant());
    EXPECT_TRUE(trace.events()[1].isInstant());
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
}

TEST(EventTraceDeathTest, BackwardsSpanPanics)
{
    EventTrace trace;
    EXPECT_DEATH(trace.span("x", "y", 10, 5), "ends before");
}

TEST(EventTrace, TimelineIsSortedByStart)
{
    EventTrace trace;
    trace.span("b", "second", 200, 210);
    trace.span("a", "first", 100, 110);
    std::ostringstream oss;
    trace.writeTimeline(oss);
    auto text = oss.str();
    EXPECT_LT(text.find("first"), text.find("second"));
}

TEST(EventTrace, ChromeJsonIsWellFormedEnough)
{
    EventTrace trace;
    trace.span("ckpt", "ckpt \"1\"", 0, 10);
    trace.instant("fault", "err", 5);
    std::ostringstream oss;
    trace.writeChromeJson(oss);
    auto text = oss.str();
    EXPECT_EQ(text.front(), '[');
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(text.find("\\\"1\\\""), std::string::npos)
        << "quotes must be escaped";
    EXPECT_NE(text.find("\"dur\": 10"), std::string::npos);
}

TEST(EventTrace, RuntimeRecordsCheckpointsAndRecoveries)
{
    harness::Runner runner(4);
    EventTrace trace;
    harness::ExperimentConfig config;
    config.mode = harness::BerMode::kReCkpt;
    config.numCheckpoints = 8;
    config.numErrors = 1;
    config.sliceThreshold = 0;
    config.trace = &trace;
    auto result = runner.run("is", config);

    unsigned checkpoints = 0, recoveries = 0, faults = 0;
    for (const auto &event : trace.events()) {
        if (event.category == "checkpoint")
            ++checkpoints;
        else if (event.category == "recovery")
            ++recoveries;
        else if (event.category == "fault")
            ++faults;
    }
    EXPECT_EQ(checkpoints, result.checkpointsEstablished);
    EXPECT_EQ(recoveries, result.recoveries);
    EXPECT_EQ(faults, 2u) << "one error instant + one detection instant";
}

} // namespace
} // namespace acr
