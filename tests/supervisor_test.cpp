/**
 * @file
 * Fault-tolerance layer tests (DESIGN.md §10): backoff determinism,
 * the quarantine placeholder and its FAILED-cell rendering, the
 * `failed` wire record, and the crash-safe Journal — fresh/reload
 * round trips, torn-tail tolerance, failed-record rerun semantics,
 * and grid validation. The end-to-end crash/respawn/resume behavior
 * of the Supervisor itself is exercised against real forked workers
 * by tests/fault_smoke.cmake.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/supervisor.hh"

namespace
{

using namespace acr;
using namespace acr::harness;

std::vector<GridPoint>
tinyGrid()
{
    std::vector<GridPoint> points;
    ExperimentConfig config;
    config.mode = BerMode::kNoCkpt;
    points.push_back({"is", config, 2});
    config.mode = BerMode::kCkpt;
    points.push_back({"is", config, 2});
    config.mode = BerMode::kReCkpt;
    points.push_back({"is", config, 2});
    return points;
}

/** A distinguishable successful result. */
ExperimentResult
fakeResult(std::uint64_t cycles)
{
    ExperimentResult result;
    result.cycles = cycles;
    result.energyPj = static_cast<double>(cycles) * 2.0;
    result.edp = static_cast<double>(cycles) * 3.0;
    result.checkpointsEstablished = 7;
    return result;
}

std::string
dump(const ExperimentResult &result)
{
    return wire::encodeResult(result).dump();
}

/** Per-test journal path under gtest's temp dir. */
std::string
journalPath(const std::string &tag)
{
    return testing::TempDir() + "acr_journal_" + tag + "_" +
           std::to_string(::getpid()) + ".ndjson";
}

TEST(Backoff, DeterministicJitteredAndCapped)
{
    Supervisor::Options options;
    options.backoffBaseSec = 0.1;
    options.backoffCapSec = 1.0;

    // Same (tries, gridIndex) always yields the same delay.
    EXPECT_EQ(Supervisor::backoffSeconds(options, 1, 3),
              Supervisor::backoffSeconds(options, 1, 3));

    // Jitter stays within [0.5, 1.5)x of the capped exponential.
    for (unsigned tries = 1; tries <= 8; ++tries) {
        for (std::size_t index = 0; index < 16; ++index) {
            const double base = std::min(
                options.backoffCapSec,
                options.backoffBaseSec * std::ldexp(1.0, tries - 1));
            const double delay =
                Supervisor::backoffSeconds(options, tries, index);
            EXPECT_GE(delay, 0.5 * base);
            EXPECT_LT(delay, 1.5 * base);
        }
    }

    // Deep retry counts saturate at the cap instead of overflowing.
    EXPECT_LT(Supervisor::backoffSeconds(options, 64, 0),
              1.5 * options.backoffCapSec);
}

TEST(QuarantinedResult, PoisonsEveryDerivedMetric)
{
    const auto result =
        ExperimentResult::quarantined(3, "killed by signal 9");
    EXPECT_TRUE(result.failed);
    EXPECT_EQ(result.attempts, 3u);
    EXPECT_TRUE(std::isnan(result.energyPj));
    EXPECT_TRUE(std::isnan(result.edp));
    EXPECT_TRUE(std::isnan(result.timeOverheadPct(1000)));
    EXPECT_TRUE(std::isnan(result.energyOverheadPct(1000.0)));
    EXPECT_TRUE(std::isnan(result.edpReductionPct(1000.0)));
}

TEST(TableFailedCell, EveryEmitterRendersNonFiniteAsFailed)
{
    Table table({"name", "value"});
    table.row().cell(std::string("ok")).cell(1.5);
    table.row()
        .cell(std::string("poisoned"))
        .cell(std::nan(""), 2);

    std::ostringstream text, csv, json;
    table.print(text);
    table.printCsv(csv);
    table.printJson(json);
    EXPECT_NE(text.str().find("FAILED"), std::string::npos);
    EXPECT_NE(csv.str().find("FAILED"), std::string::npos);
    // The JSON emitter must quote it (bare nan would not parse).
    EXPECT_NE(json.str().find("\"FAILED\""), std::string::npos);
}

TEST(WireFailed, RoundTripsAndResultEncodingRefusesQuarantine)
{
    wire::FailedRecord record;
    record.index = 11;
    record.attempts = 3;
    record.reason = "worker killed by signal 9";
    const auto decoded =
        wire::decodeLine(wire::encodeFailedLine(record));
    ASSERT_EQ(decoded.type, wire::Record::Type::kFailed);
    EXPECT_EQ(decoded.failed.index, 11u);
    EXPECT_EQ(decoded.failed.attempts, 3u);
    EXPECT_EQ(decoded.failed.reason, record.reason);

    // A quarantine placeholder must never masquerade as a result
    // record: its payload is NaN-poisoned, not a measurement.
    EXPECT_THROW(wire::encodeResult(
                     ExperimentResult::quarantined(2, "boom")),
                 serde::SerdeError);
}

TEST(JournalTest, FreshThenResumeServesRecordedResults)
{
    const auto grid = tinyGrid();
    const auto path = journalPath("fresh");

    {
        Journal journal;
        journal.open(path, false, "bench", 0, 1, grid);
        ASSERT_TRUE(journal.isOpen());
        EXPECT_TRUE(journal.entries().empty());
        journal.record(0, fakeResult(100));
        journal.record(2, fakeResult(300));
        EXPECT_EQ(journal.appended(), 2u);
    }

    Journal reloaded;
    reloaded.open(path, true, "bench", 0, 1, grid);
    ASSERT_EQ(reloaded.entries().size(), 2u);
    EXPECT_EQ(dump(reloaded.entries().at(0)), dump(fakeResult(100)));
    EXPECT_EQ(dump(reloaded.entries().at(2)), dump(fakeResult(300)));
    // The reopened journal appends, so resuming twice still works.
    EXPECT_EQ(reloaded.appended(), 0u);
    reloaded.record(1, fakeResult(200));
    reloaded.close();

    Journal full;
    full.open(path, true, "bench", 0, 1, grid);
    EXPECT_EQ(full.entries().size(), 3u);
    std::remove(path.c_str());
}

TEST(JournalTest, WriteFailureDegradesInsteadOfDying)
{
    const auto grid = tinyGrid();
    const auto path = journalPath("enospc");

    {
        Journal journal;
        journal.open(path, false, "bench", 0, 1, grid);
        journal.record(0, fakeResult(100));

        // The next append hits (injected) ENOSPC: the journal must
        // warn and degrade, not fatal() — a full disk may disable
        // resumability but never kill the sweep itself.
        journal.failNextWriteForTest();
        journal.record(1, fakeResult(200));
        EXPECT_TRUE(journal.degraded());
        EXPECT_TRUE(journal.isOpen());
        EXPECT_EQ(journal.appended(), 1u);  // only the durable one

        // Further records are silent no-ops, not crashes.
        journal.record(2, fakeResult(300));
        EXPECT_EQ(journal.appended(), 1u);
    }

    // The file holds exactly the records appended before the failure:
    // a clean durable prefix a --resume can still load (the lost
    // points simply rerun).
    Journal reloaded;
    reloaded.open(path, true, "bench", 0, 1, grid);
    ASSERT_EQ(reloaded.entries().size(), 1u);
    EXPECT_EQ(dump(reloaded.entries().at(0)), dump(fakeResult(100)));
    std::remove(path.c_str());
}

TEST(JournalTest, WithoutResumeTruncatesExistingJournal)
{
    const auto grid = tinyGrid();
    const auto path = journalPath("truncate");

    {
        Journal journal;
        journal.open(path, false, "bench", 0, 1, grid);
        journal.record(0, fakeResult(100));
    }
    Journal fresh;
    fresh.open(path, false, "bench", 0, 1, grid);
    EXPECT_TRUE(fresh.entries().empty());
    fresh.close();

    Journal reloaded;
    reloaded.open(path, true, "bench", 0, 1, grid);
    EXPECT_TRUE(reloaded.entries().empty());
    std::remove(path.c_str());
}

TEST(JournalTest, ResumeWithMissingFileStartsFresh)
{
    const auto grid = tinyGrid();
    const auto path = journalPath("missing");
    std::remove(path.c_str());

    Journal journal;
    journal.open(path, true, "bench", 0, 1, grid);
    EXPECT_TRUE(journal.isOpen());
    EXPECT_TRUE(journal.entries().empty());
    journal.close();
    std::remove(path.c_str());
}

TEST(JournalTest, TornFinalLineIsDropped)
{
    const auto grid = tinyGrid();
    const auto path = journalPath("torn");

    {
        Journal journal;
        journal.open(path, false, "bench", 0, 1, grid);
        journal.record(0, fakeResult(100));
        journal.record(1, fakeResult(200));
    }
    // Simulate the coordinator dying mid-append: chop the trailing
    // newline and half the final record.
    std::string content;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        content = buffer.str();
    }
    ASSERT_GT(content.size(), 40u);
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out << content.substr(0, content.size() - 40);
    }

    Journal reloaded;
    reloaded.open(path, true, "bench", 0, 1, grid);
    ASSERT_EQ(reloaded.entries().size(), 1u);
    EXPECT_EQ(dump(reloaded.entries().at(0)), dump(fakeResult(100)));
    // Point 1 reruns and its fresh record appends cleanly.
    reloaded.record(1, fakeResult(200));
    reloaded.close();

    Journal full;
    full.open(path, true, "bench", 0, 1, grid);
    EXPECT_EQ(full.entries().size(), 2u);
    std::remove(path.c_str());
}

TEST(JournalTest, FailedRecordsAreSkippedSoQuarantinedPointsRerun)
{
    const auto grid = tinyGrid();
    const auto path = journalPath("failed");

    {
        Journal journal;
        journal.open(path, false, "bench", 0, 1, grid);
        journal.record(0, fakeResult(100));
        journal.record(
            1, ExperimentResult::quarantined(3, "killed by signal 9"));
        EXPECT_EQ(journal.appended(), 2u);
    }

    Journal reloaded;
    reloaded.open(path, true, "bench", 0, 1, grid);
    EXPECT_EQ(reloaded.entries().size(), 1u);
    EXPECT_EQ(reloaded.entries().count(1), 0u);
    std::remove(path.c_str());
}

TEST(JournalTest, ResumeValidatesBenchShardAndGrid)
{
    const auto grid = tinyGrid();
    const auto path = journalPath("validate");

    {
        Journal journal;
        journal.open(path, false, "bench", 0, 1, grid);
        journal.record(0, fakeResult(100));
    }

    EXPECT_EXIT(
        {
            Journal journal;
            journal.open(path, true, "other", 0, 1, grid);
        },
        testing::ExitedWithCode(1), "belongs to bench");
    EXPECT_EXIT(
        {
            Journal journal;
            journal.open(path, true, "bench", 1, 2, grid);
        },
        testing::ExitedWithCode(1), "shard");
    EXPECT_EXIT(
        {
            auto other = tinyGrid();
            other.pop_back();
            Journal journal;
            journal.open(path, true, "bench", 0, 1, other);
        },
        testing::ExitedWithCode(1), "different grid");
    std::remove(path.c_str());
}

} // namespace
