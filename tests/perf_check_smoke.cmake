# Gate-tool self-test for scripts/perf_check: the threshold argument
# must be validated (a non-numeric value used to escape as an uncaught
# ValueError traceback, and negative/NaN/>=1 values made the gate
# vacuous — floor <= 0 or NaN comparisons pass everything). Each bad
# value must exit 2 with a clean usage message, and the committed
# baseline compared against itself must still pass.
#
# Invoke with
#   cmake -DPYTHON=<python3> -DPERF_CHECK=<scripts/perf_check>
#         -DBASELINE=<bench/BENCH_perf.baseline.json> -P perf_check_smoke.cmake

foreach(var PYTHON PERF_CHECK BASELINE)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "perf_check_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

# One rejected threshold value: exit 2, diagnostic + usage on stderr,
# no traceback.
function(expect_rejected value)
    execute_process(
        COMMAND "${PYTHON}" "${PERF_CHECK}" "--threshold=${value}"
                "${BASELINE}" "${BASELINE}"
        RESULT_VARIABLE code
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT code EQUAL 2)
        message(FATAL_ERROR
                "--threshold=${value}: want exit 2, got '${code}'\n${err}")
    endif()
    if(NOT err MATCHES "invalid --threshold")
        message(FATAL_ERROR
                "--threshold=${value}: missing diagnostic; stderr:\n${err}")
    endif()
    if(NOT err MATCHES "usage: perf_check")
        message(FATAL_ERROR
                "--threshold=${value}: missing usage line; stderr:\n${err}")
    endif()
    if(err MATCHES "Traceback")
        message(FATAL_ERROR
                "--threshold=${value}: leaked a traceback:\n${err}")
    endif()
    message(STATUS "rejected --threshold=${value} cleanly")
endfunction()

expect_rejected("abc")     # the historical ValueError crash
expect_rejected("")        # empty value
expect_rejected("-0.1")    # negative: floor above baseline, gate inverted
expect_rejected("nan")     # NaN: every comparison false, gate vacuous
expect_rejected("inf")     # non-finite
expect_rejected("1.0")     # floor 0: gate vacuous
expect_rejected("2")       # floor negative: gate vacuous

# Missing file arguments: usage + exit 2 (pre-existing path, kept).
execute_process(
    COMMAND "${PYTHON}" "${PERF_CHECK}" "--threshold=0.15"
    RESULT_VARIABLE code
    ERROR_VARIABLE err)
if(NOT code EQUAL 2 OR NOT err MATCHES "usage: perf_check")
    message(FATAL_ERROR "missing paths: want usage + exit 2, got "
            "'${code}'\n${err}")
endif()

# Good path: the committed baseline against itself is never a
# regression (normalized == baseline exactly).
execute_process(
    COMMAND "${PYTHON}" "${PERF_CHECK}" "--threshold=0.15"
            "${BASELINE}" "${BASELINE}"
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT code EQUAL 0)
    message(FATAL_ERROR
            "baseline vs itself: want exit 0, got '${code}'\n${err}")
endif()
if(NOT out MATCHES "perf_check: OK")
    message(FATAL_ERROR "baseline vs itself: missing OK line:\n${out}")
endif()
message(STATUS "baseline vs itself passes the gate")
