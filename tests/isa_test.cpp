/**
 * @file
 * Unit tests for the ISA: opcode classification (the slicer's contract),
 * arithmetic semantics, the program builder, validation, and
 * disassembly.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/builder.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace acr::isa
{
namespace
{

TEST(Opcode, ClassificationPartitionsTheSet)
{
    for (unsigned o = 0; o < static_cast<unsigned>(Opcode::kNumOpcodes);
         ++o) {
        Opcode op = static_cast<Opcode>(o);
        int classes = (isSliceable(op) ? 1 : 0) + (isMem(op) ? 1 : 0) +
                      (isBranch(op) ? 1 : 0) + (isBarrier(op) ? 1 : 0) +
                      (isHalt(op) ? 1 : 0);
        EXPECT_EQ(classes, 1) << "opcode " << opcodeName(op)
                              << " is in " << classes << " classes";
    }
}

TEST(Opcode, SliceableNeverTouchesMemoryOrControl)
{
    for (unsigned o = 0; o < static_cast<unsigned>(Opcode::kNumOpcodes);
         ++o) {
        Opcode op = static_cast<Opcode>(o);
        if (isSliceable(op)) {
            EXPECT_FALSE(isMem(op));
            EXPECT_FALSE(isBranch(op));
            EXPECT_TRUE(writesReg(op));
        }
    }
}

TEST(EvalArith, IntegerOps)
{
    EXPECT_EQ(evalArith(Opcode::kAdd, 3, 4, 0, 0), 7u);
    EXPECT_EQ(evalArith(Opcode::kSub, 3, 4, 0, 0), ~Word{0});
    EXPECT_EQ(evalArith(Opcode::kMul, 6, 7, 0, 0), 42u);
    EXPECT_EQ(evalArith(Opcode::kDivu, 42, 5, 0, 0), 8u);
    EXPECT_EQ(evalArith(Opcode::kDivu, 42, 0, 0, 0), 0u)
        << "division by zero is defined as 0";
    EXPECT_EQ(evalArith(Opcode::kRemu, 42, 5, 0, 0), 2u);
    EXPECT_EQ(evalArith(Opcode::kRemu, 42, 0, 0, 0), 42u)
        << "x % 0 is defined as x";
}

TEST(EvalArith, BitwiseAndShifts)
{
    EXPECT_EQ(evalArith(Opcode::kAnd, 0b1100, 0b1010, 0, 0), 0b1000u);
    EXPECT_EQ(evalArith(Opcode::kOr, 0b1100, 0b1010, 0, 0), 0b1110u);
    EXPECT_EQ(evalArith(Opcode::kXor, 0b1100, 0b1010, 0, 0), 0b0110u);
    EXPECT_EQ(evalArith(Opcode::kShl, 1, 65, 0, 0), 2u)
        << "shift amounts are mod 64";
    EXPECT_EQ(evalArith(Opcode::kShr, 0x8000000000000000ull, 63, 0, 0),
              1u);
    EXPECT_EQ(evalArith(Opcode::kSra, ~Word{0}, 5, 0, 0), ~Word{0})
        << "arithmetic shift keeps the sign";
}

TEST(EvalArith, Comparisons)
{
    EXPECT_EQ(evalArith(Opcode::kCmpEq, 5, 5, 0, 0), 1u);
    EXPECT_EQ(evalArith(Opcode::kCmpEq, 5, 6, 0, 0), 0u);
    EXPECT_EQ(evalArith(Opcode::kCmpLtu, 1, 2, 0, 0), 1u);
    // -1 unsigned is huge, signed is small.
    EXPECT_EQ(evalArith(Opcode::kCmpLtu, ~Word{0}, 1, 0, 0), 0u);
    EXPECT_EQ(evalArith(Opcode::kCmpLts, ~Word{0}, 1, 0, 0), 1u);
    EXPECT_EQ(evalArith(Opcode::kMin, 3, 9, 0, 0), 3u);
    EXPECT_EQ(evalArith(Opcode::kMax, 3, 9, 0, 0), 9u);
}

TEST(EvalArith, ImmediateForms)
{
    EXPECT_EQ(evalArith(Opcode::kAddi, 10, 0, -3, 0), 7u);
    EXPECT_EQ(evalArith(Opcode::kMuli, 10, 0, 5, 0), 50u);
    EXPECT_EQ(evalArith(Opcode::kMovi, 999, 999, -1, 0), ~Word{0});
    EXPECT_EQ(evalArith(Opcode::kTid, 0, 0, 0, 12), 12u);
    EXPECT_EQ(evalArith(Opcode::kShli, 3, 0, 2, 0), 12u);
    EXPECT_EQ(evalArith(Opcode::kShri, 12, 0, 2, 0), 3u);
}

TEST(Builder, ForwardAndBackwardLabels)
{
    ProgramBuilder b("labels");
    b.movi(1, 0);
    b.label("loop");
    b.addi(1, 1, 1);
    b.movi(2, 5);
    b.bltu(1, 2, "loop");
    b.jmp("end");
    b.movi(3, 111);  // skipped
    b.label("end");
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.validate(), "");
    // The backward branch targets pc 1, the forward jmp targets pc 6.
    EXPECT_EQ(p.at(3).imm, 1);
    EXPECT_EQ(p.at(4).imm, 6);
}

TEST(BuilderDeathTest, UndefinedLabelIsFatal)
{
    ProgramBuilder b("bad");
    b.jmp("nowhere");
    b.halt();
    EXPECT_EXIT(b.build(), testing::ExitedWithCode(1), "undefined label");
}

TEST(BuilderDeathTest, DuplicateLabelIsFatal)
{
    ProgramBuilder b("bad");
    b.label("x");
    EXPECT_EXIT(b.label("x"), testing::ExitedWithCode(1), "duplicate");
}

TEST(Program, ValidateCatchesMissingHalt)
{
    Program p("nohalt");
    p.code().push_back({Opcode::kAddi, 1, 0, 0, 1, false});
    EXPECT_NE(p.validate().find("halt"), std::string::npos);
}

TEST(Program, ValidateCatchesR0Write)
{
    Program p("r0");
    p.code().push_back({Opcode::kAddi, 0, 0, 0, 1, false});
    p.code().push_back({Opcode::kHalt, 0, 0, 0, 0, false});
    EXPECT_NE(p.validate().find("r0"), std::string::npos);
}

TEST(Program, ValidateCatchesBranchOutOfRange)
{
    Program p("branch");
    p.code().push_back({Opcode::kJmp, 0, 0, 0, 99, false});
    p.code().push_back({Opcode::kHalt, 0, 0, 0, 0, false});
    EXPECT_NE(p.validate().find("target"), std::string::npos);
}

TEST(Program, ValidateCatchesSliceHintOnNonStore)
{
    Program p("hint");
    p.code().push_back({Opcode::kAddi, 1, 0, 0, 1, true});
    p.code().push_back({Opcode::kHalt, 0, 0, 0, 0, false});
    EXPECT_NE(p.validate().find("sliceHint"), std::string::npos);
}

TEST(Program, SliceHintedStoresCountsOnlyHinted)
{
    ProgramBuilder b("hints");
    b.movi(1, 7);
    b.store(1, 1);
    b.store(1, 1, 1);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.sliceHintedStores(), 0u);
    p.code()[1].sliceHint = true;
    EXPECT_EQ(p.sliceHintedStores(), 1u);
}

TEST(Program, DataSegmentRoundTrips)
{
    ProgramBuilder b("data");
    b.data(100, 42).data(200, 43);
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.data().words.size(), 2u);
    EXPECT_EQ(p.data().words[0].first, 100u);
    EXPECT_EQ(p.data().words[0].second, 42u);
}

TEST(Disassembler, RendersEveryClass)
{
    EXPECT_NE(toString({Opcode::kAdd, 1, 2, 3, 0, false}).find("add"),
              std::string::npos);
    EXPECT_NE(toString({Opcode::kLoad, 1, 2, 0, 8, false}).find("[r2+8]"),
              std::string::npos);
    auto store = toString({Opcode::kStore, 0, 2, 3, -4, true});
    EXPECT_NE(store.find("[r2-4]"), std::string::npos);
    EXPECT_NE(store.find("assoc-addr"), std::string::npos);
    EXPECT_NE(toString({Opcode::kBarrier, 0, 0, 0, 0, false})
                  .find("barrier"),
              std::string::npos);
}

TEST(Disassembler, DumpsWholeProgram)
{
    ProgramBuilder b("dump");
    b.movi(1, 1);
    b.halt();
    Program p = b.build();
    std::ostringstream oss;
    p.disassemble(oss);
    EXPECT_NE(oss.str().find("movi"), std::string::npos);
    EXPECT_NE(oss.str().find("halt"), std::string::npos);
    EXPECT_NE(oss.str().find("'dump'"), std::string::npos);
}

} // namespace
} // namespace acr::isa
