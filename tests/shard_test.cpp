/**
 * @file
 * ShardedSweep tests: the static partition is disjoint and covering,
 * "i/N" parsing is strict, the ordered sink fires in ascending grid
 * order even under parallel execution, shards executed in separate
 * pools merge to exactly the unsharded results (the wire encodings are
 * compared byte-for-byte), and the --worker loop speaks the wire
 * protocol over plain streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "harness/sharded_sweep.hh"
#include "harness/wire.hh"

namespace
{

using namespace acr;
using namespace acr::harness;

std::vector<GridPoint>
smallGrid()
{
    // is on a 2-core machine is the cheapest sweep point; vary the
    // config axis so every result differs.
    std::vector<GridPoint> points;
    ExperimentConfig config;
    config.mode = BerMode::kNoCkpt;
    points.push_back({"is", config, 2});
    config.mode = BerMode::kCkpt;
    points.push_back({"is", config, 2});
    config.mode = BerMode::kReCkpt;
    points.push_back({"is", config, 2});
    config.numErrors = 1;
    points.push_back({"is", config, 2});
    config.mode = BerMode::kCkpt;
    points.push_back({"is", config, 2});
    return points;
}

std::vector<std::string>
encodeAll(const std::vector<ExperimentResult> &results)
{
    std::vector<std::string> lines;
    for (const auto &result : results)
        lines.push_back(wire::encodeResult(result).dump());
    return lines;
}

TEST(ShardIndices, DisjointAndCovering)
{
    for (std::size_t total : {0u, 1u, 7u, 16u}) {
        for (unsigned count : {1u, 2u, 3u, 5u}) {
            std::set<std::size_t> seen;
            for (unsigned shard = 0; shard < count; ++shard) {
                const auto owned = ShardedSweep::shardIndices(
                    total, {shard, count});
                EXPECT_TRUE(
                    std::is_sorted(owned.begin(), owned.end()));
                for (std::size_t index : owned) {
                    EXPECT_EQ(index % count, shard);
                    EXPECT_LT(index, total);
                    EXPECT_TRUE(seen.insert(index).second)
                        << "index " << index << " owned twice";
                }
            }
            EXPECT_EQ(seen.size(), total);
        }
    }
}

TEST(ShardParse, AcceptsAndRejects)
{
    const auto shard = ShardedSweep::parseShard("1/3");
    EXPECT_EQ(shard.index, 1u);
    EXPECT_EQ(shard.count, 3u);

    const auto zero = ShardedSweep::parseShard("0/1");
    EXPECT_EQ(zero.index, 0u);
    EXPECT_EQ(zero.count, 1u);

    // strtol would happily take signs, spaces, and leading zeros;
    // only the canonical `digits/digits` spelling is a valid shard,
    // so the same string always names the same shard file.
    for (const char *bad : {"", "/", "1", "3/3", "4/3", "a/2", "1/b",
                            "-1/2", "1/0", "1/2x", "+1/4", " 1/4",
                            "1/+4", "1/ 4", "01/4", "1/04", "0x1/4",
                            "1//4", "1/4/4"}) {
        EXPECT_EXIT(ShardedSweep::parseShard(bad),
                    testing::ExitedWithCode(1), "shard")
            << "accepted '" << bad << "'";
    }
}

TEST(ShardedSweepRun, MatchesAcrossJobCountsAndSinkIsOrdered)
{
    const auto grid = smallGrid();

    RunnerPool serial_pool;
    ShardedSweep serial(serial_pool, 1);
    const auto reference = encodeAll(serial.run(grid));
    ASSERT_EQ(reference.size(), grid.size());

    RunnerPool parallel_pool;
    ShardedSweep parallel(parallel_pool, 4);
    std::vector<std::size_t> order;
    const auto results = parallel.run(
        grid, {},
        [&](std::size_t index, const ExperimentResult &) {
            order.push_back(index);
        });
    EXPECT_EQ(encodeAll(results), reference);

    // The sink saw every grid index, in ascending order.
    std::vector<std::size_t> expected(grid.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        expected[i] = i;
    EXPECT_EQ(order, expected);
}

TEST(ShardedSweepRun, ShardsMergeToTheUnshardedResults)
{
    const auto grid = smallGrid();

    RunnerPool reference_pool;
    const auto reference =
        encodeAll(ShardedSweep(reference_pool, 1).run(grid));

    // Each shard in its own pool: nothing shared but the wire format,
    // exactly like two machines.
    std::vector<std::string> merged(grid.size());
    for (unsigned shard = 0; shard < 2; ++shard) {
        RunnerPool pool;
        ShardedSweep sweep(pool, 2);
        const auto owned =
            ShardedSweep::shardIndices(grid.size(), {shard, 2});
        const auto results = sweep.run(grid, {shard, 2});
        ASSERT_EQ(results.size(), owned.size());
        for (std::size_t i = 0; i < owned.size(); ++i)
            merged[owned[i]] = wire::encodeResult(results[i]).dump();
    }
    EXPECT_EQ(merged, reference);
}

TEST(WorkerLoop, SpeaksTheWireProtocol)
{
    const auto grid = smallGrid();

    RunnerPool reference_pool;
    const auto reference =
        encodeAll(ShardedSweep(reference_pool, 1).run(grid));

    // Feed the points out of order to prove the worker echoes indices
    // rather than renumbering.
    std::ostringstream request;
    for (std::size_t index : {2UL, 0UL, 4UL})
        request << wire::encodePointLine(
                       {index, grid[index]})
                << "\n";

    RunnerPool worker_pool;
    std::istringstream in(request.str());
    std::ostringstream out;
    EXPECT_EQ(ShardedSweep::workerLoop(worker_pool, in, out), 0);

    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::uint64_t> indices;
    while (std::getline(lines, line)) {
        const auto record = wire::decodeLine(line);
        ASSERT_EQ(record.type, wire::Record::Type::kResult);
        indices.push_back(record.result.index);
        EXPECT_EQ(wire::encodeResult(record.result.result).dump(),
                  reference[record.result.index]);
    }
    EXPECT_EQ(indices, (std::vector<std::uint64_t>{2, 0, 4}));
}

TEST(WorkerLoop, RejectsGarbageWithNonzeroStatus)
{
    RunnerPool pool;
    std::istringstream in("{\"v\":2,\"type\":\"result\"}\n");
    std::ostringstream out;
    EXPECT_NE(ShardedSweep::workerLoop(pool, in, out), 0);

    std::istringstream garbage("not a record\n");
    std::ostringstream out2;
    EXPECT_NE(ShardedSweep::workerLoop(pool, garbage, out2), 0);
}

} // namespace
