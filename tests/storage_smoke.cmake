# Storage-fault smoke, run as a ctest (and mirrored by the CI
# storage-smoke job). Drives the torture bench with checkpoint-medium
# fault injection armed (DESIGN.md §16) and checks the three
# properties the escalation ladder promises:
#
#   1. A joint compute x storage campaign (errors landing while stored
#      records and arch images are being corrupted) recovers through
#      the ladder — every corrupt read is detected, healed by replica
#      retry or an older-checkpoint retarget, and validated bit-exact
#      by the recovery oracle — byte-identically across --jobs=1 and
#      --jobs=8.
#   2. The same campaign rendered through the distributed path
#      (2-shard --shard=i/2 record emission + --merge) stays
#      byte-identical to the single-process run.
#   3. A storage-fault plan that defeats every escalation rung turns
#      into a structured UNRECOVERABLE verdict with exit code 5 and a
#      shrunk joint compute x storage repro line — never silent wrong
#      data, never an abort.
#
# Invoke with
#   cmake -DBENCH=<path to torture> -DOUT=<scratch dir>
#         -P storage_smoke.cmake

foreach(var BENCH OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "storage_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

# Joint campaign: one workload, both checkpointing modes, two media
# (DRAM undo log and NVM), 4 compute errors vs 3 storage faults on a
# 5-checkpoint budget. campaign-seed=1 lands every surviving fault on
# a healable rung: 4 corrupt reads, all healed by retargeting the
# older retained checkpoint, 0 unrecoverable.
set(campaign
    --workloads=is --modes=ckpt,reckpt --coords=global
    --backends=log,nvm --lats=0.5 --errors=4 --storage-errors=3
    --checkpoints=5 --seeds=1 --campaign-seed=1 --oracle=on)

function(run_torture output expect_status)
    execute_process(
        COMMAND "${BENCH}" ${campaign} ${ARGN}
        OUTPUT_FILE "${output}"
        ERROR_FILE "${output}.stderr"
        RESULT_VARIABLE status)
    if(NOT status EQUAL ${expect_status})
        file(READ "${output}.stderr" stderr)
        message(FATAL_ERROR
                "${BENCH} ${ARGN}: expected exit ${expect_status}, "
                "got ${status}:\n${stderr}")
    endif()
endfunction()

# 1. Clean joint campaign, deterministic across parallelism, with
#    every detected corrupt read healed under the oracle.
run_torture("${OUT}/jobs1.txt" 0 --jobs=1)
run_torture("${OUT}/jobs8.txt" 0 --jobs=8)
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${OUT}/jobs1.txt" "${OUT}/jobs8.txt"
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "storage --jobs=1 and --jobs=8 rendered different output")
endif()
file(READ "${OUT}/jobs1.txt" clean)
if(NOT clean MATCHES "0 divergences")
    message(FATAL_ERROR
            "clean campaign did not report zero divergences:\n${clean}")
endif()
file(READ "${OUT}/jobs1.txt.stderr" stderr)
if(NOT stderr MATCHES
   "4 corrupt read\\(s\\), 0 replica switch\\(es\\), 4 older-checkpoint retarget\\(s\\), 0 unrecoverable")
    message(FATAL_ERROR
            "storage summary did not show the expected healed "
            "escalations:\n${stderr}")
endif()

# 2. Distributed path: 2-shard record emission + --merge must render
#    byte-identically to the --jobs=1 run.
run_torture("${OUT}/shard0.ndjson" 0 --jobs=8 --shard=0/2)
run_torture("${OUT}/shard1.ndjson" 0 --jobs=8 --shard=1/2)
run_torture("${OUT}/merged.txt" 0
            "--merge=${OUT}/shard0.ndjson,${OUT}/shard1.ndjson")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${OUT}/jobs1.txt" "${OUT}/merged.txt"
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "2-shard --merge differs from the --jobs=1 render")
endif()

# 3. Forced escalation exhaustion: a shrunk single-event x single-fault
#    plan that tears every retained checkpoint on the replicated
#    medium. Exit 5 (unrecoverable outranks divergence/quarantine in
#    the 0<3<4<5 precedence), structured verdict, repro line — and the
#    oracle still reports zero divergences: the refusal is honest, not
#    silent corruption.
execute_process(
    COMMAND "${BENCH}" --workloads=is --modes=ckpt --coords=global
            --backends=replicated --lats=0.5 --errors=4
            --checkpoints=5 --campaign-seed=11325013 --seeds=1
            --oracle=on --event-mask=4 --storage-errors=6
            --storage-mask=8 --jobs=1
    OUTPUT_FILE "${OUT}/unrecoverable.txt"
    ERROR_FILE "${OUT}/unrecoverable.stderr"
    RESULT_VARIABLE status)
if(NOT status EQUAL 5)
    message(FATAL_ERROR
            "forced escalation: expected exit 5, got ${status}")
endif()
file(READ "${OUT}/unrecoverable.stderr" stderr)
if(NOT stderr MATCHES "UNRECOVERABLE: no intact rollback target")
    message(FATAL_ERROR
            "no structured unrecoverable verdict:\n${stderr}")
endif()
if(NOT stderr MATCHES "0 divergence\\(s\\)")
    message(FATAL_ERROR
            "unrecoverable campaign was not divergence-free:\n${stderr}")
endif()
if(NOT stderr MATCHES "\\[torture\\] repro: torture ")
    message(FATAL_ERROR "no shrunk repro line:\n${stderr}")
endif()
if(NOT stderr MATCHES "--storage-mask=")
    message(FATAL_ERROR
            "repro line carries no shrunk storage mask:\n${stderr}")
endif()

message(STATUS "storage smoke: joint campaign healed deterministically "
               "(jobs, shards, merge), exhausted ladder exits 5 with "
               "a shrunk repro")
