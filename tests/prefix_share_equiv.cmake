# Prefix-sharing A/B lock, run as a ctest: bench/perf executed with
# --prefix-share=on and --prefix-share=off must produce byte-identical
# simulated results for every grid point (--results-out CSV: cycles,
# energy, checkpoint/recovery counts, stored/omitted bytes). Sharing is
# a pure wall-time optimization — a resumed run is instruction-identical
# to a from-scratch one — so ANY difference here means the fast path
# drifted from the reference path and must be treated as a correctness
# bug, not a perf regression.
#
# Invoke with
#   cmake -DPERF=<path to bench/perf> -DOUT=<scratch dir>
#         -P prefix_share_equiv.cmake

foreach(var PERF OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "prefix_share_equiv.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

foreach(mode on off)
    execute_process(
        COMMAND "${PERF}" --repeats=1 --out= --format=json
                --prefix-share=${mode}
                --results-out=${OUT}/results.${mode}.csv
        OUTPUT_FILE "${OUT}/perf.${mode}.stdout"
        ERROR_FILE "${OUT}/perf.${mode}.stderr"
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        file(READ "${OUT}/perf.${mode}.stderr" stderr)
        message(FATAL_ERROR
                "${PERF} --prefix-share=${mode} exited ${status}:\n"
                "${stderr}")
    endif()
endforeach()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${OUT}/results.on.csv" "${OUT}/results.off.csv"
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "prefix sharing changed simulated results "
            "(${OUT}/results.on.csv vs ${OUT}/results.off.csv); the "
            "snapshot/fork path must be instruction-identical to full "
            "re-simulation — fix the snapshot, do not re-record")
endif()

message(STATUS "prefix share: on/off grid results are byte-identical")
