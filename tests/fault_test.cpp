/**
 * @file
 * Tests for the fault model: the Fig. 1 error-rate curve, uniform error
 * plans, and the injector state machine against a live system.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fault/injector.hh"
#include "fault/storage_fault.hh"
#include "isa/builder.hh"

namespace acr::fault
{
namespace
{

TEST(ErrorRate, Fig1GrowsMultiplicatively)
{
    EXPECT_DOUBLE_EQ(relativeErrorRate(0), 1.0);
    EXPECT_NEAR(relativeErrorRate(1), 1.08, 1e-12);
    EXPECT_NEAR(relativeErrorRate(6), std::pow(1.08, 6), 1e-9);
    EXPECT_GT(relativeErrorRate(9), 1.9)
        << "roughly doubles over nine generations at 8%/generation";
}

TEST(FaultPlan, UniformSpacingMatchesSecVD2)
{
    auto plan = FaultPlan::uniform(4, 1000, 50, 7);
    ASSERT_EQ(plan.events.size(), 4u);
    EXPECT_EQ(plan.events[0].progressTrigger, 200u);
    EXPECT_EQ(plan.events[1].progressTrigger, 400u);
    EXPECT_EQ(plan.events[2].progressTrigger, 600u);
    EXPECT_EQ(plan.events[3].progressTrigger, 800u);
    EXPECT_EQ(plan.detectionLatency, 50u);
    for (const auto &event : plan.events)
        EXPECT_NE(event.xorMask, 0u);
}

TEST(FaultPlan, MasksAreSeedDeterministic)
{
    auto a = FaultPlan::uniform(3, 100, 1, 42);
    auto b = FaultPlan::uniform(3, 100, 1, 42);
    auto c = FaultPlan::uniform(3, 100, 1, 43);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(a.events[i].xorMask, b.events[i].xorMask);
    bool any_diff = false;
    for (int i = 0; i < 3; ++i)
        any_diff = any_diff || a.events[i].xorMask != c.events[i].xorMask;
    EXPECT_TRUE(any_diff);
}

isa::Program
spinProgram(unsigned iters)
{
    isa::ProgramBuilder b("spin");
    b.movi(1, 0);
    b.movi(2, static_cast<SWord>(iters));
    b.movi(3, 5000);
    b.label("loop");
    b.addi(1, 1, 1);
    b.store(3, 1);
    b.bltu(1, 2, "loop");
    b.halt();
    return b.build();
}

TEST(Injector, FullLifecycleInjectsAndDetects)
{
    auto program = spinProgram(5000);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(2), program);

    auto plan = FaultPlan::uniform(1, 10000, 100, 9);
    StatSet stats;
    ErrorInjector injector(plan, stats);
    EXPECT_FALSE(injector.done());

    std::optional<DetectionEvent> detection;
    while (!system.allHalted() && !detection) {
        system.step();
        detection = injector.poll(system);
    }
    ASSERT_TRUE(detection.has_value());
    EXPECT_GE(detection->detectTime,
              detection->errorTime + plan.detectionLatency);
    EXPECT_EQ(injector.injected(), 1u);
    EXPECT_EQ(injector.detected(), 1u);
    EXPECT_TRUE(injector.done());
    EXPECT_DOUBLE_EQ(stats.get("fault.injected"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("fault.detected"), 1.0);
}

TEST(Injector, CorruptionActuallyChangesAValue)
{
    auto program = spinProgram(2000);
    // Golden final state.
    sim::MulticoreSystem golden(sim::MachineConfig::tableI(1), program);
    golden.runToCompletion();

    sim::MulticoreSystem system(sim::MachineConfig::tableI(1), program);
    auto plan = FaultPlan::uniform(1, 2000 * 3, 1u << 30, 9);
    StatSet stats;
    ErrorInjector injector(plan, stats);
    // Detection latency is huge: the program finishes corrupted, and
    // detection fires at the (halted) end.
    std::optional<DetectionEvent> detection;
    while (!detection) {
        system.step();
        detection = injector.poll(system);
        if (system.allHalted() && !detection)
            detection = injector.poll(system);
        if (system.allHalted() && !detection)
            break;
    }
    ASSERT_TRUE(detection.has_value());
    EXPECT_NE(golden.memory().read(5000), system.memory().read(5000))
        << "the corrupted counter value must reach memory";
}

TEST(Injector, MultipleErrorsFireInOrder)
{
    auto program = spinProgram(20000);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(2), program);
    auto plan = FaultPlan::uniform(3, 60000, 10, 11);
    StatSet stats;
    ErrorInjector injector(plan, stats);

    unsigned detections = 0;
    Cycle last_error = 0;
    // poll() always advances its state machine once everything halted
    // (latent -> detect, armed -> reschedule/drop, idle with an
    // unreachable trigger -> drop), so this terminates.
    while (!(system.allHalted() && injector.done())) {
        if (!system.allHalted())
            system.step();
        if (auto d = injector.poll(system)) {
            ++detections;
            EXPECT_GE(d->errorTime, last_error);
            last_error = d->errorTime;
        }
    }
    // Without recovery, a corruption may truncate the execution so a
    // later trigger becomes unreachable and is dropped; every planned
    // error is accounted for either way.
    EXPECT_EQ(detections + injector.dropped(), 3u);
    EXPECT_GE(detections, 1u);
    EXPECT_EQ(detections, injector.detected());
}

TEST(Injector, NoErrorsMeansImmediatelyDone)
{
    auto plan = FaultPlan::uniform(0, 100, 1, 1);
    StatSet stats;
    ErrorInjector injector(plan, stats);
    EXPECT_TRUE(injector.done());
}

TEST(Injector, ForceDetectionDropsAnArmedErrorExactlyOnce)
{
    auto program = spinProgram(5000);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(2), program);
    auto plan = FaultPlan::uniform(1, 10000, 100, 9);
    StatSet stats;
    ErrorInjector injector(plan, stats);

    // Reach the trigger, then poll once: the corruption is armed on a
    // victim core but not yet applied.
    while (system.progress() < plan.events[0].progressTrigger)
        system.step();
    EXPECT_FALSE(injector.poll(system).has_value());
    ASSERT_EQ(injector.injected(), 0u) << "must still be armed";
    EXPECT_FALSE(injector.done());

    // The watchdog path drops an armed (never-applied) error: no
    // detection, dropped_ bumps exactly once, and the injector
    // converges to done().
    EXPECT_FALSE(injector.forceDetection(system).has_value());
    EXPECT_EQ(injector.dropped(), 1u);
    EXPECT_EQ(injector.detected(), 0u);
    EXPECT_TRUE(injector.done());
    EXPECT_DOUBLE_EQ(stats.get("fault.dropped"), 1.0);

    // Idempotent once idle: a second force must not double-count.
    EXPECT_FALSE(injector.forceDetection(system).has_value());
    EXPECT_EQ(injector.dropped(), 1u);
    EXPECT_DOUBLE_EQ(stats.get("fault.dropped"), 1.0);
    EXPECT_TRUE(injector.done());
}

TEST(Injector, ForceDetectionSurfacesALatentError)
{
    auto program = spinProgram(5000);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(2), program);
    // Latency far beyond the run: without forcing, detection would
    // only fire at halt.
    auto plan = FaultPlan::uniform(1, 10000, 1u << 30, 9);
    StatSet stats;
    ErrorInjector injector(plan, stats);

    // Run until the corruption is applied (latent). A step is a whole
    // scheduling quantum, so the corrupted victim may halt within the
    // same poll that applies the corruption — in which case poll
    // itself surfaces the detection (halted + latent).
    std::optional<DetectionEvent> detection;
    while (injector.injected() == 0 && !detection) {
        ASSERT_FALSE(system.allHalted());
        system.step();
        detection = injector.poll(system);
    }

    // The watchdog path surfaces the latent error without waiting out
    // the (enormous) detection latency.
    if (!detection)
        detection = injector.forceDetection(system);
    ASSERT_TRUE(detection.has_value());
    EXPECT_GE(detection->detectTime, detection->errorTime);
    EXPECT_EQ(injector.detected(), 1u);
    EXPECT_EQ(injector.dropped(), 0u);
    EXPECT_TRUE(injector.done());
    EXPECT_DOUBLE_EQ(stats.get("fault.detected"), 1.0);

    // Idle injector: a second force is a no-op, nothing double-counts.
    EXPECT_FALSE(injector.forceDetection(system).has_value());
    EXPECT_EQ(injector.detected(), 1u);
    EXPECT_DOUBLE_EQ(stats.get("fault.detected"), 1.0);
}

TEST(Injector, DoneConvergesWhenTheLastEventCanNeverFire)
{
    auto program = spinProgram(50);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(1), program);
    // One event triggered far past the short program's total progress:
    // it can never occur.
    auto plan = FaultPlan::uniform(1, 1u << 30, 10, 9);
    StatSet stats;
    ErrorInjector injector(plan, stats);

    while (!system.allHalted()) {
        system.step();
        EXPECT_FALSE(injector.poll(system).has_value());
    }
    // The poll on the halted system (in-loop above on the final step)
    // accounts the unreachable event as dropped; the injector
    // converges instead of spinning, and further polls on the idle
    // injector must not double-count.
    EXPECT_FALSE(injector.poll(system).has_value());
    EXPECT_TRUE(injector.done());
    EXPECT_EQ(injector.dropped(), 1u);
    EXPECT_DOUBLE_EQ(stats.get("fault.dropped"), 1.0);
    EXPECT_FALSE(injector.poll(system).has_value());
    EXPECT_EQ(injector.dropped(), 1u);
    EXPECT_DOUBLE_EQ(stats.get("fault.dropped"), 1.0);
}

TEST(FaultPlan, CountZeroNeedsNoProgress)
{
    // An error-free plan must be constructible before any profile
    // exists (total_progress == 0 is fine when nothing will trigger).
    auto plan = FaultPlan::uniform(0, 0, 0, 1);
    EXPECT_TRUE(plan.events.empty());
    StatSet stats;
    ErrorInjector injector(plan, stats);
    EXPECT_TRUE(injector.done());
}

TEST(FaultPlan, MoreErrorsThanProgressCollides)
{
    // count > total_progress forces colliding triggers; the plan must
    // stay monotonic with every mask usable (never 0).
    auto plan = FaultPlan::uniform(10, 4, 1, 5);
    ASSERT_EQ(plan.events.size(), 10u);
    for (std::size_t i = 1; i < plan.events.size(); ++i)
        EXPECT_GE(plan.events[i].progressTrigger,
                  plan.events[i - 1].progressTrigger);
    for (const auto &event : plan.events) {
        EXPECT_LT(event.progressTrigger, 4u);
        EXPECT_NE(event.xorMask, 0u);
    }
    // Same seed, same collisions: the plan is a pure function of its
    // arguments.
    auto again = FaultPlan::uniform(10, 4, 1, 5);
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        EXPECT_EQ(plan.events[i].progressTrigger,
                  again.events[i].progressTrigger);
        EXPECT_EQ(plan.events[i].xorMask, again.events[i].xorMask);
    }
}

TEST(FaultPlan, XorMaskNeverZeroAcrossSeeds)
{
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        auto plan = FaultPlan::uniform(5, 1000, 1, seed);
        for (const auto &event : plan.events)
            EXPECT_NE(event.xorMask, 0u) << "seed " << seed;
    }
}

TEST(FaultPlan, MaskedProjectsEventsByOrdinal)
{
    auto plan = FaultPlan::uniform(4, 1000, 50, 7);

    auto all = plan.masked(~std::uint64_t{0});
    ASSERT_EQ(all.events.size(), 4u);

    auto middle = plan.masked(0b0110);
    ASSERT_EQ(middle.events.size(), 2u);
    EXPECT_EQ(middle.events[0].progressTrigger,
              plan.events[1].progressTrigger);
    EXPECT_EQ(middle.events[0].xorMask, plan.events[1].xorMask);
    EXPECT_EQ(middle.events[1].progressTrigger,
              plan.events[2].progressTrigger);
    // Ordinals survive projection, so a masked event keeps its
    // round-robin victim identity — the shrunk repro replays the same
    // (victim, trigger, mask) tuples as the full campaign.
    EXPECT_EQ(middle.events[0].ordinal, 1u);
    EXPECT_EQ(middle.events[1].ordinal, 2u);
    EXPECT_EQ(middle.detectionLatency, plan.detectionLatency);

    // Masking is deterministic and composes like set intersection.
    auto one = middle.masked(0b0100);
    ASSERT_EQ(one.events.size(), 1u);
    EXPECT_EQ(one.events[0].ordinal, 2u);
}

TEST(Injector, OverlappingLatentWindowsTrackTwoErrorsAtOnce)
{
    auto program = spinProgram(20000);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(2), program);
    // Two triggers one progress step apart with an enormous latency:
    // both corruptions go latent together.
    FaultPlan plan;
    plan.detectionLatency = 1u << 30;
    plan.events.push_back({100, 1, 0});
    plan.events.push_back({101, 1, 1});
    StatSet stats;
    ErrorInjector injector(plan, stats);

    while (injector.injected() < 2 && !system.allHalted()) {
        system.step();
        injector.poll(system);
    }
    EXPECT_EQ(injector.injected(), 2u);
    EXPECT_EQ(injector.latentCount(), 2u)
        << "both errors latent concurrently (the single-Phase machine "
           "could only hold one)";
    EXPECT_EQ(injector.detected(), 0u);

    // Detections surface one per poll, earliest error first.
    auto first = injector.forceDetection(system);
    ASSERT_TRUE(first.has_value());
    auto second = injector.forceDetection(system);
    ASSERT_TRUE(second.has_value());
    EXPECT_LE(first->errorTime, second->errorTime);
    EXPECT_EQ(injector.detected(), 2u);
    EXPECT_TRUE(injector.done());
}

TEST(Injector, OnRecoveryRequeuesErrorsTheRollbackErased)
{
    auto program = spinProgram(20000);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(2), program);
    FaultPlan plan;
    plan.detectionLatency = 1u << 30;
    plan.events.push_back({100, 1, 0});
    StatSet stats;
    ErrorInjector injector(plan, stats);

    while (injector.injected() < 1 && !system.allHalted()) {
        system.step();
        injector.poll(system);
    }
    ASSERT_EQ(injector.latentCount(), 1u);

    // A rollback of every core to a checkpoint established before the
    // error erases the corruption: the event must return to pending
    // (and count as requeued), then fire again.
    injector.onRecovery(system.allCoresMask(), 0);
    EXPECT_EQ(injector.requeued(), 1u);
    EXPECT_EQ(injector.latentCount(), 0u);
    EXPECT_FALSE(injector.done());
    EXPECT_DOUBLE_EQ(stats.get("fault.requeued"), 1.0);

    while (injector.injected() < 2 && !system.allHalted()) {
        system.step();
        injector.poll(system);
    }
    EXPECT_EQ(injector.injected(), 2u) << "the requeued error re-fires";
    EXPECT_EQ(injector.latentCount(), 1u);

    // A rollback that resumes past the error time keeps it latent:
    // the corruption survived, so re-posting it would double-inject.
    injector.onRecovery(system.allCoresMask(),
                        system.maxCycle() + 1000000);
    EXPECT_EQ(injector.requeued(), 1u);
    EXPECT_EQ(injector.latentCount(), 1u);
}

TEST(StorageFaultPlan, UniformIsSeedDeterministicAndInRange)
{
    const std::vector<StorageFaultKind> kinds = {
        StorageFaultKind::kRecordFlip, StorageFaultKind::kArchFlip,
        StorageFaultKind::kTornGroup};
    auto a = StorageFaultPlan::uniform(6, 5, kinds, 42);
    auto b = StorageFaultPlan::uniform(6, 5, kinds, 42);
    auto c = StorageFaultPlan::uniform(6, 5, kinds, 43);

    ASSERT_EQ(a.events.size(), 6u);
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        // Pure function of its arguments: same seed, same plan.
        EXPECT_EQ(a.events[i].ckptIndex, b.events[i].ckptIndex);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].xorMask, b.events[i].xorMask);
        EXPECT_EQ(a.events[i].pick, b.events[i].pick);
        EXPECT_EQ(a.events[i].ordinal, i);
        // Every event lands on a real establishment ordinal (1-based)
        // with a usable flip mask.
        EXPECT_GE(a.events[i].ckptIndex, 1u);
        EXPECT_LE(a.events[i].ckptIndex, 5u);
        EXPECT_NE(a.events[i].xorMask, 0u);
        // Ordinals spread monotonically, like FaultPlan's triggers.
        if (i > 0)
            EXPECT_GE(a.events[i].ckptIndex,
                      a.events[i - 1].ckptIndex);
    }
    bool any_diff = false;
    for (std::size_t i = 0; i < a.events.size(); ++i)
        any_diff = any_diff || a.events[i].xorMask != c.events[i].xorMask
                   || a.events[i].kind != c.events[i].kind;
    EXPECT_TRUE(any_diff) << "a different seed draws a different plan";
}

TEST(StorageFaultPlan, KindsDrawOnlyFromTheMediumsFailureModes)
{
    const std::vector<StorageFaultKind> kinds = {
        StorageFaultKind::kTornGroup};
    auto plan = StorageFaultPlan::uniform(8, 4, kinds, 7);
    for (const auto &event : plan.events)
        EXPECT_EQ(event.kind, StorageFaultKind::kTornGroup);
}

TEST(StorageFaultPlan, MaskedProjectsEventsByOrdinal)
{
    const std::vector<StorageFaultKind> kinds = {
        StorageFaultKind::kRecordFlip, StorageFaultKind::kArchFlip};
    auto plan = StorageFaultPlan::uniform(4, 5, kinds, 9);

    auto all = plan.masked(~std::uint64_t{0});
    ASSERT_EQ(all.events.size(), 4u);

    auto middle = plan.masked(0b0110);
    ASSERT_EQ(middle.events.size(), 2u);
    EXPECT_EQ(middle.events[0].ckptIndex, plan.events[1].ckptIndex);
    EXPECT_EQ(middle.events[0].xorMask, plan.events[1].xorMask);
    EXPECT_EQ(middle.events[0].pick, plan.events[1].pick);
    // Ordinals survive projection: the shrunk storage repro replays
    // the same (ordinal, target, mask) tuples as the full campaign.
    EXPECT_EQ(middle.events[0].ordinal, 1u);
    EXPECT_EQ(middle.events[1].ordinal, 2u);

    // Masking composes like set intersection.
    auto one = middle.masked(0b0100);
    ASSERT_EQ(one.events.size(), 1u);
    EXPECT_EQ(one.events[0].ordinal, 2u);
}

TEST(StorageFaultInjector, DealsEventsByEstablishmentOrdinal)
{
    const std::vector<StorageFaultKind> kinds = {
        StorageFaultKind::kRecordFlip};
    auto plan = StorageFaultPlan::uniform(4, 2, kinds, 11);
    StatSet stats;
    StorageFaultInjector injector(plan, stats);
    EXPECT_EQ(injector.planned(), 4u);
    EXPECT_EQ(injector.pending(), 4u);

    // takeDue consumes exactly the events keyed to that ordinal; an
    // ordinal with no events yields nothing, and dealing is one-shot.
    std::size_t dealt = 0;
    for (std::uint64_t index = 1; index <= 2; ++index) {
        const auto due = injector.takeDue(index);
        for (const auto &event : due) {
            EXPECT_EQ(event.ckptIndex, index);
            ++dealt;
        }
        EXPECT_TRUE(injector.takeDue(index).empty());
    }
    EXPECT_EQ(dealt, 4u);
    EXPECT_EQ(injector.pending(), 0u);

    injector.noteInjected();
    injector.noteDropped();
    EXPECT_DOUBLE_EQ(stats.get("storage.injected"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("storage.dropped"), 1.0);
}

} // namespace
} // namespace acr::fault
