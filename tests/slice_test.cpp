/**
 * @file
 * Tests for the recomputation substrate: static slice representation,
 * repository dedup, instance/operand-buffer accounting, the dynamic
 * backward slicer, and the property that replaying a captured Slice
 * reproduces the stored value bit-for-bit for randomized programs.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "cpu/core.hh"
#include "isa/builder.hh"
#include "mem/main_memory.hh"
#include "slice/engine.hh"
#include "slice/instance.hh"
#include "slice/policy.hh"
#include "slice/repository.hh"

namespace acr::slice
{
namespace
{

using isa::Opcode;

// ---------------------------------------------------------------------
// Static slices and the repository
// ---------------------------------------------------------------------

StaticSlice
addChain()
{
    // v = (in0 + 5) * in1
    StaticSlice s;
    s.code.push_back({Opcode::kAddi, 5, inputSrc(0), kNoSrc});
    s.code.push_back({Opcode::kMul, 0, 0, inputSrc(1)});
    s.numInputs = 2;
    return s;
}

TEST(StaticSlice, SourceEncodingRoundTrips)
{
    EXPECT_TRUE(isInputSrc(inputSrc(0)));
    EXPECT_TRUE(isInputSrc(inputSrc(7)));
    EXPECT_FALSE(isInputSrc(0));
    EXPECT_FALSE(isInputSrc(kNoSrc));
    EXPECT_EQ(inputIndexOf(inputSrc(3)), 3u);
}

TEST(Repository, InternDeduplicatesIdenticalShapes)
{
    SliceRepository repo;
    SliceId a = repo.intern(addChain());
    SliceId b = repo.intern(addChain());
    EXPECT_EQ(a, b);
    EXPECT_EQ(repo.uniqueSlices(), 1u);
    EXPECT_EQ(repo.totalInstrs(), 2u);

    StaticSlice other = addChain();
    other.code[0].imm = 6;
    SliceId c = repo.intern(other);
    EXPECT_NE(a, c);
    EXPECT_EQ(repo.uniqueSlices(), 2u);
}

TEST(Repository, GetReturnsTheCanonicalSlice)
{
    SliceRepository repo;
    SliceId id = repo.intern(addChain());
    EXPECT_EQ(repo.get(id).code.size(), 2u);
    repo.clear();
    EXPECT_EQ(repo.uniqueSlices(), 0u);
}

// ---------------------------------------------------------------------
// Instances and operand-buffer accounting
// ---------------------------------------------------------------------

TEST(OperandBuffer, EnforcesCapacity)
{
    OperandBufferAccounting buf(4);
    EXPECT_TRUE(buf.tryReserve(3));
    EXPECT_FALSE(buf.tryReserve(2));
    EXPECT_EQ(buf.rejections(), 1u);
    EXPECT_TRUE(buf.tryReserve(1));
    buf.release(4);
    EXPECT_EQ(buf.liveWords(), 0u);
    EXPECT_EQ(buf.peakWords(), 4u);
}

TEST(Instance, LifetimeReturnsBufferSpace)
{
    SliceRepository repo;
    SliceId id = repo.intern(addChain());
    OperandBufferAccounting buf(8);
    {
        auto inst = SliceInstance::create(id, {2, 3}, buf);
        ASSERT_NE(inst, nullptr);
        EXPECT_EQ(buf.liveWords(), 2u);
    }
    EXPECT_EQ(buf.liveWords(), 0u);
}

TEST(Instance, CreateFailsWhenBufferFull)
{
    SliceRepository repo;
    SliceId id = repo.intern(addChain());
    OperandBufferAccounting buf(1);
    EXPECT_EQ(SliceInstance::create(id, {2, 3}, buf), nullptr);
    EXPECT_EQ(buf.liveWords(), 0u);
}

TEST(Instance, ReplayEvaluatesTheSlice)
{
    SliceRepository repo;
    SliceId id = repo.intern(addChain());
    OperandBufferAccounting buf(8);
    auto inst = SliceInstance::create(id, {10, 3}, buf);
    ReplayCost cost;
    EXPECT_EQ(inst->replay(repo, &cost), (10u + 5u) * 3u);
    EXPECT_EQ(cost.aluOps, 2u);
    EXPECT_EQ(cost.operandReads, 2u);
}

// ---------------------------------------------------------------------
// Selection policy
// ---------------------------------------------------------------------

TEST(Policy, GreedyThresholdCapsLength)
{
    SlicePolicyConfig policy;
    policy.lengthThreshold = 10;
    EXPECT_TRUE(policy.accepts(10, 2));
    EXPECT_FALSE(policy.accepts(11, 2));
    EXPECT_FALSE(policy.accepts(0, 1)) << "a pure copy is not a Slice";
    EXPECT_EQ(policy.buildCap(), 10u);
}

TEST(Policy, InputCapApplies)
{
    SlicePolicyConfig policy;
    policy.maxInputs = 4;
    EXPECT_FALSE(policy.accepts(3, 5));
}

TEST(Policy, CostModelAcceptsWhenRecomputeIsCheaper)
{
    SlicePolicyConfig policy;
    policy.policy = SelectionPolicy::kCostModel;
    // Long but cheap chains pass the cost model even beyond 10.
    EXPECT_TRUE(policy.accepts(40, 4));
    EXPECT_EQ(policy.buildCap(), policy.costModelMaxLen);
    // An absurdly expensive slice fails.
    policy.aluCost = 1e9;
    EXPECT_FALSE(policy.accepts(40, 4));
}

// ---------------------------------------------------------------------
// The dynamic slicer on real executions
// ---------------------------------------------------------------------

struct SliceRig
{
    explicit SliceRig(isa::Program prog)
        : program(std::move(prog)),
          caches(1, cache::HierarchyConfig{}, mem::DramConfig{}),
          core(0, program, memory, caches, cpu::CoreTimingConfig{}),
          engine(1)
    {
        for (const auto &[addr, value] : program.data().words)
            memory.write(addr, value);
    }

    isa::Program program;  // owned: Core keeps a reference into it

    /** Run to halt, building a slice at each store. */
    std::vector<std::optional<BuiltSlice>>
    run(const SlicePolicyConfig &policy)
    {
        struct Observer : cpu::ExecObserver
        {
            SliceRig *rig;
            const SlicePolicyConfig *policy;
            std::vector<std::optional<BuiltSlice>> built;
            void
            onInstr(const cpu::InstrEvent &e) override
            {
                if (isa::isStore(e.inst->op)) {
                    const BuiltSlice *b =
                        rig->engine.buildForStore(e, *policy);
                    built.push_back(b ? std::optional<BuiltSlice>(*b)
                                      : std::nullopt);
                    return;
                }
                rig->engine.observe(e);
            }
        } observer;
        observer.rig = this;
        observer.policy = &policy;
        core.run(1u << 22, &observer);
        return std::move(observer.built);
    }

    mem::MainMemory memory;
    cache::CacheSystem caches;
    cpu::Core core;
    SliceEngine engine;
};

TEST(Engine, ArithmeticChainYieldsExactLengthSlice)
{
    isa::ProgramBuilder b("chain");
    b.movi(1, 7);      // arith producer (part of the slice)
    b.addi(1, 1, 3);
    b.muli(1, 1, 5);
    b.movi(2, 100);
    b.store(2, 1);
    b.halt();
    SliceRig rig(b.build());
    auto built = rig.run(SlicePolicyConfig{});
    ASSERT_EQ(built.size(), 1u);
    ASSERT_TRUE(built[0].has_value());
    EXPECT_EQ(built[0]->slice.length(), 3u);  // movi, addi, muli
    EXPECT_EQ(built[0]->slice.numInputs, 0u);
    EXPECT_EQ(built[0]->value, (7u + 3u) * 5u);
}

TEST(Engine, LoadsBecomeCapturedInputs)
{
    isa::ProgramBuilder b("loads");
    b.data(50, 11);
    b.movi(1, 50);
    b.load(2, 1);     // leaf: captured value 11
    b.addi(2, 2, 1);  // slice instr
    b.store(1, 2, 1);
    b.halt();
    SliceRig rig(b.build());
    auto built = rig.run(SlicePolicyConfig{});
    ASSERT_TRUE(built.at(0).has_value());
    EXPECT_EQ(built[0]->slice.length(), 1u);
    ASSERT_EQ(built[0]->inputs.size(), 1u);
    EXPECT_EQ(built[0]->inputs[0], 11u);
    EXPECT_EQ(built[0]->value, 12u);
}

TEST(Engine, StoredLoadHasNoSlice)
{
    isa::ProgramBuilder b("copy");
    b.data(50, 11);
    b.movi(1, 50);
    b.load(2, 1);
    b.store(1, 2, 1);  // pure copy: backward slice contains the load
    b.halt();
    SliceRig rig(b.build());
    auto built = rig.run(SlicePolicyConfig{});
    EXPECT_FALSE(built.at(0).has_value());
}

TEST(Engine, TidIsCapturedNotReplayed)
{
    isa::ProgramBuilder b("tid");
    b.tid(1);
    b.addi(1, 1, 100);
    b.movi(2, 60);
    b.store(2, 1);
    b.halt();
    SliceRig rig(b.build());
    auto built = rig.run(SlicePolicyConfig{});
    ASSERT_TRUE(built.at(0).has_value());
    EXPECT_EQ(built[0]->slice.length(), 1u);
    ASSERT_EQ(built[0]->inputs.size(), 1u);
    EXPECT_EQ(built[0]->inputs[0], 0u) << "core 0's tid";
}

TEST(Engine, ThresholdRejectsLongChains)
{
    isa::ProgramBuilder b("long");
    b.movi(1, 1);
    for (int i = 0; i < 15; ++i)
        b.addi(1, 1, 1);
    b.movi(2, 70);
    b.store(2, 1);
    b.halt();
    SliceRig rig(b.build());

    SlicePolicyConfig strict;
    strict.lengthThreshold = 10;
    EXPECT_FALSE(rig.run(strict).at(0).has_value());

    SliceRig rig2(b.build());
    SlicePolicyConfig loose;
    loose.lengthThreshold = 20;
    auto built = rig2.run(loose);
    ASSERT_TRUE(built.at(0).has_value());
    EXPECT_EQ(built[0]->slice.length(), 16u);
}

TEST(Engine, SharedSubexpressionsCountOnce)
{
    // t = 3 + 4; v = t * t: the DAG has 3 arith nodes, not 4.
    isa::ProgramBuilder b("dag");
    b.movi(1, 3);
    b.addi(1, 1, 4);
    b.mul(2, 1, 1);
    b.movi(3, 80);
    b.store(3, 2);
    b.halt();
    SliceRig rig(b.build());
    auto built = rig.run(SlicePolicyConfig{});
    ASSERT_TRUE(built.at(0).has_value());
    EXPECT_EQ(built[0]->slice.length(), 3u);
}

TEST(Engine, SliceNeverContainsMemoryOrControlOps)
{
    isa::ProgramBuilder b("pure");
    b.data(90, 5);
    b.movi(1, 90);
    b.load(2, 1);
    b.addi(2, 2, 1);
    b.mul(2, 2, 2);
    b.store(1, 2, 1);
    b.halt();
    SliceRig rig(b.build());
    auto built = rig.run(SlicePolicyConfig{});
    ASSERT_TRUE(built.at(0).has_value());
    for (const SliceInstr &si : built[0]->slice.code)
        EXPECT_TRUE(isSliceable(si.op))
            << "slice contains " << opcodeName(si.op);
}

TEST(Engine, ResetCoreMakesRegistersOpaque)
{
    isa::ProgramBuilder b("reset");
    b.movi(1, 7);
    b.addi(1, 1, 1);
    b.movi(2, 95);
    b.store(2, 1);
    b.store(2, 1, 1);
    b.halt();
    SliceRig rig(b.build());

    struct Observer : cpu::ExecObserver
    {
        SliceRig *rig;
        SlicePolicyConfig policy;
        int stores = 0;
        std::optional<BuiltSlice> first, second;
        void
        onInstr(const cpu::InstrEvent &e) override
        {
            if (isa::isStore(e.inst->op)) {
                const auto *built = rig->engine.buildForStore(e, policy);
                if (stores++ == 0) {
                    if (built)
                        first = *built;
                    // Simulate a rollback between the stores.
                    std::array<Word, isa::kNumRegs> regs{};
                    for (unsigned r = 0; r < isa::kNumRegs; ++r)
                        regs[r] = rig->core.reg(r);
                    rig->engine.resetCore(0, regs);
                } else {
                    if (built)
                        second = *built;
                }
                return;
            }
            rig->engine.observe(e);
        }
    } observer;
    observer.rig = &rig;
    rig.core.run(1000, &observer);

    EXPECT_TRUE(observer.first.has_value());
    EXPECT_FALSE(observer.second.has_value())
        << "after reset the value's producer is opaque";
}

/**
 * Property: for random straight-line arithmetic programs, every built
 * slice replays to exactly the stored value.
 */
class SliceReplayProperty : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SliceReplayProperty, ReplayMatchesStoredValue)
{
    Rng rng(GetParam());
    isa::ProgramBuilder b("random");

    // Seed some registers and data.
    for (unsigned r = 1; r <= 8; ++r)
        b.movi(static_cast<isa::Reg>(r),
               static_cast<SWord>(rng.next() & 0xffff));
    for (Addr a = 0; a < 16; ++a)
        b.data(200 + a, rng.next());
    b.movi(20, 200);

    unsigned stores = 0;
    for (int i = 0; i < 200; ++i) {
        unsigned pick = static_cast<unsigned>(rng.below(10));
        isa::Reg rd = static_cast<isa::Reg>(1 + rng.below(8));
        isa::Reg rs1 = static_cast<isa::Reg>(1 + rng.below(8));
        isa::Reg rs2 = static_cast<isa::Reg>(1 + rng.below(8));
        switch (pick) {
          case 0: b.add(rd, rs1, rs2); break;
          case 1: b.sub(rd, rs1, rs2); break;
          case 2: b.mul(rd, rs1, rs2); break;
          case 3: b.xor_(rd, rs1, rs2); break;
          case 4: b.and_(rd, rs1, rs2); break;
          case 5: b.or_(rd, rs1, rs2); break;
          case 6:
            b.addi(rd, rs1, static_cast<SWord>(rng.below(1000)));
            break;
          case 7:
            b.shri(rd, rs1, static_cast<SWord>(rng.below(63)));
            break;
          case 8:
            b.load(rd, 20, static_cast<SWord>(rng.below(16)));
            break;
          default:
            b.store(20, rs2, static_cast<SWord>(16 + stores));
            ++stores;
            break;
        }
    }
    b.store(20, 1, 99);
    b.halt();

    SliceRig rig(b.build());
    SlicePolicyConfig policy;
    policy.lengthThreshold = 64;
    policy.maxInputs = 64;
    auto built = rig.run(policy);

    unsigned replayed = 0;
    SliceRepository repo;
    OperandBufferAccounting buf(1u << 20);
    for (const auto &maybe : built) {
        if (!maybe)
            continue;
        SliceId id = repo.intern(maybe->slice);
        auto inst = SliceInstance::create(id, maybe->inputs, buf);
        ASSERT_NE(inst, nullptr);
        EXPECT_EQ(inst->replay(repo, nullptr), maybe->value);
        ++replayed;
    }
    EXPECT_GT(replayed, 0u) << "degenerate program: nothing sliceable";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceReplayProperty,
                         testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace acr::slice
