/**
 * @file
 * Tests for the expression-DSL frontend: codegen correctness (executed
 * on the simulator), immediate folding, register lifetime, control
 * flow, and interoperation with the ACR compiler pass.
 */

#include <gtest/gtest.h>

#include "acr/slice_pass.hh"
#include "frontend/function.hh"
#include "sim/system.hh"

namespace acr::frontend
{
namespace
{

Word
runAndRead(isa::Program program, Addr addr, unsigned threads = 1)
{
    sim::MulticoreSystem sys(sim::MachineConfig::tableI(threads),
                             std::move(program));
    sys.runToCompletion();
    return sys.memory().read(addr);
}

TEST(Frontend, ArithmeticExpressionCompilesAndRuns)
{
    Function f("arith");
    f.store(Expr(100), (Expr(3) + 4) * 5 - 2);
    EXPECT_EQ(runAndRead(f.build(), 100), 33u);
}

TEST(Frontend, OperatorCoverage)
{
    Function f("ops");
    f.store(Expr(200), (Expr(12) / 5) % 2);         // (12/5)%2 = 0
    f.store(Expr(201), (Expr(0b1100) & 0b1010));    // 8
    f.store(Expr(202), (Expr(0b1100) | 0b0011));    // 15
    f.store(Expr(203), (Expr(0b1100) ^ 0b1010));    // 6
    f.store(Expr(204), Expr(3) << 4);               // 48
    f.store(Expr(205), Expr(48) >> 4);              // 3
    f.store(Expr(206), min(Expr(9), Expr(4)));
    f.store(Expr(207), max(Expr(9), Expr(4)));
    f.store(Expr(208), eq(Expr(5), Expr(5)));
    f.store(Expr(209), ltu(Expr(4), Expr(5)));
    auto program = f.build();
    sim::MulticoreSystem sys(sim::MachineConfig::tableI(1), program);
    sys.runToCompletion();
    EXPECT_EQ(sys.memory().read(200), 0u);
    EXPECT_EQ(sys.memory().read(201), 8u);
    EXPECT_EQ(sys.memory().read(202), 15u);
    EXPECT_EQ(sys.memory().read(203), 6u);
    EXPECT_EQ(sys.memory().read(204), 48u);
    EXPECT_EQ(sys.memory().read(205), 3u);
    EXPECT_EQ(sys.memory().read(206), 4u);
    EXPECT_EQ(sys.memory().read(207), 9u);
    EXPECT_EQ(sys.memory().read(208), 1u);
    EXPECT_EQ(sys.memory().read(209), 1u);
}

TEST(Frontend, ImmediateFoldingShrinksCode)
{
    Function folded("folded");
    folded.store(Expr(100), folded.tid() + 7);
    auto p1 = folded.build();

    Function unfolded("unfolded");
    // Force the register-register path: rhs is not a constant node.
    unfolded.store(Expr(100), unfolded.tid() + (unfolded.tid() + 0));
    auto p2 = unfolded.build();

    EXPECT_LT(p1.size(), p2.size());
    // The folded program contains an addi, not a movi+add pair.
    bool has_addi = false;
    for (const auto &inst : p1.code())
        has_addi = has_addi || inst.op == isa::Opcode::kAddi;
    EXPECT_TRUE(has_addi);
}

TEST(Frontend, VariablesAreMutable)
{
    Function f("vars");
    Var acc = f.var(Expr(0));
    f.assign(acc, acc.read() + 5);
    f.assign(acc, acc.read() * 3);
    f.store(Expr(300), acc.read());
    EXPECT_EQ(runAndRead(f.build(), 300), 15u);
}

TEST(Frontend, ForRangeExecutesBodyExactly)
{
    Function f("loop");
    Var sum = f.var(Expr(0));
    f.forRange(1, 11, [&](Expr i) { f.assign(sum, sum.read() + i); });
    f.store(Expr(400), sum.read());
    EXPECT_EQ(runAndRead(f.build(), 400), 55u);
}

TEST(Frontend, EmptyForRangeRunsZeroTimes)
{
    Function f("empty");
    Var sum = f.var(Expr(7));
    f.forRange(5, 5, [&](Expr) { f.assign(sum, Expr(0)); });
    f.store(Expr(401), sum.read());
    EXPECT_EQ(runAndRead(f.build(), 401), 7u);
}

TEST(Frontend, NestedLoopsReleaseRegisters)
{
    Function f("nested");
    Var sum = f.var(Expr(0));
    unsigned before = f.freeRegs();
    f.forRange(0, 4, [&](Expr i) {
        f.forRange(0, 4, [&](Expr j) {
            f.assign(sum, sum.read() + i * 4 + j);
        });
    });
    EXPECT_EQ(f.freeRegs(), before);
    f.store(Expr(402), sum.read());
    EXPECT_EQ(runAndRead(f.build(), 402), 120u);
}

TEST(Frontend, LoadsReadMemory)
{
    Function f("loads");
    f.data(500, 41);
    f.store(Expr(501), f.load(Expr(500)) + 1);
    EXPECT_EQ(runAndRead(f.build(), 501), 42u);
}

TEST(Frontend, IfNonZeroGuardsTheBody)
{
    Function f("cond");
    f.ifNonZero(eq(f.tid(), Expr(0)),
                [&] { f.store(Expr(600), Expr(1)); });
    f.ifNonZero(eq(f.tid(), Expr(99)),
                [&] { f.store(Expr(601), Expr(1)); });
    auto program = f.build();
    sim::MulticoreSystem sys(sim::MachineConfig::tableI(2), program);
    sys.runToCompletion();
    EXPECT_EQ(sys.memory().read(600), 1u);
    EXPECT_EQ(sys.memory().read(601), 0u);
}

TEST(Frontend, SpmdTidAndBarrier)
{
    Function f("spmd");
    f.store(Expr(700) + f.tid(), f.tid() * 10);
    f.barrier();
    auto program = f.build();
    sim::MulticoreSystem sys(sim::MachineConfig::tableI(4), program);
    sys.runToCompletion();
    for (Word t = 0; t < 4; ++t)
        EXPECT_EQ(sys.memory().read(700 + t), t * 10);
}

TEST(FrontendDeathTest, RegisterExhaustionIsFatal)
{
    Function f("exhaust");
    std::vector<Var> vars;
    EXPECT_EXIT(
        {
            for (int i = 0; i < 40; ++i)
                vars.push_back(f.var(Expr(i)));
        },
        testing::ExitedWithCode(1), "out of registers");
}

TEST(Frontend, GeneratedKernelIsSliceableUnderThePass)
{
    // Pure-arithmetic stores from the DSL get Slices; load-dependent
    // stores do not — the frontend composes with ACR end to end.
    Function f("dslacr");
    Var base = f.var(Expr(1 << 20) + (f.tid() << 12));
    f.forRange(0, 32, [&](Expr i) {
        f.store(base.read() + i, i * 3 + 7);  // recomputable
    });
    f.forRange(0, 32, [&](Expr i) {
        f.store(base.read() + 64 + i,
                f.load(base.read() + i));     // a pure copy: no Slice
    });
    auto program = f.build();

    auto pass = amnesic::SlicePass::run(
        program, sim::MachineConfig::tableI(2),
        slice::SlicePolicyConfig{});
    EXPECT_EQ(pass.hintedStores, 1u);
    EXPECT_EQ(pass.staticStores, 2u);
}

} // namespace
} // namespace acr::frontend
