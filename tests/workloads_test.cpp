/**
 * @file
 * Tests for the kernel generators: all eight benchmarks build and
 * validate, execute deterministically, exhibit their designed
 * communication patterns, and respect the chain-length contract the
 * Table II reproduction depends on.
 */

#include <gtest/gtest.h>

#include "acr/slice_pass.hh"
#include "sim/system.hh"
#include "workloads/kernel_spec.hh"
#include "workloads/workload.hh"

namespace acr::workloads
{
namespace
{

class EveryKernel : public testing::TestWithParam<std::string>
{
};

TEST_P(EveryKernel, BuildsAndValidates)
{
    WorkloadParams params;
    params.threads = 4;
    auto workload = makeWorkload(GetParam());
    EXPECT_EQ(workload->name(), GetParam());
    isa::Program program = workload->build(params);
    EXPECT_EQ(program.validate(), "");
    EXPECT_GT(program.size(), 50u);
    EXPECT_FALSE(program.data().words.empty());
}

TEST_P(EveryKernel, RunsToCompletionOnFourCores)
{
    WorkloadParams params;
    params.threads = 4;
    auto program = makeWorkload(GetParam())->build(params);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(4), program);
    system.runToCompletion();
    EXPECT_TRUE(system.allHalted());
    EXPECT_GT(system.progress(), 10000u);
    EXPECT_FALSE(system.memory().image().empty());
}

TEST_P(EveryKernel, DeterministicImage)
{
    WorkloadParams params;
    params.threads = 2;
    auto program = makeWorkload(GetParam())->build(params);
    sim::MulticoreSystem a(sim::MachineConfig::tableI(2), program);
    sim::MulticoreSystem b(sim::MachineConfig::tableI(2), program);
    a.runToCompletion();
    b.runToCompletion();
    EXPECT_EQ(a.memory().firstDifference(b.memory()), kInvalidAddr);
    EXPECT_EQ(a.maxCycle(), b.maxCycle());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, EveryKernel,
                         testing::ValuesIn(allWorkloadNames()),
                         [](const auto &info) { return info.param; });

TEST(Workloads, RegistryListsEightKernels)
{
    EXPECT_EQ(allWorkloadNames().size(), 8u);
}

TEST(WorkloadsDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)makeWorkload("nope"), testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(Workloads, AllToAllKernelsConnectEveryCore)
{
    // bt/cg/sp: "practically all cores communicate with one another"
    // (Sec. V-E).
    for (const char *name : {"bt", "cg", "sp"}) {
        WorkloadParams params;
        params.threads = 4;
        auto program = makeWorkload(name)->build(params);
        sim::MulticoreSystem system(sim::MachineConfig::tableI(4),
                                    program);
        for (int i = 0; i < 2000 && !system.allHalted(); ++i)
            system.step();
        auto groups =
            system.caches().directory().communicationGroups();
        EXPECT_EQ(groups.size(), 1u)
            << name << " must form a single communication group";
    }
}

TEST(Workloads, PairKernelFormsPairGroups)
{
    WorkloadParams params;
    params.threads = 4;
    auto program = makeWorkload("is")->build(params);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(4), program);
    system.runToCompletion();
    auto groups = system.caches().directory().communicationGroups();
    // Interactions cleared never: cumulative groups = {0,1}, {2,3}.
    EXPECT_EQ(groups.size(), 2u);
}

TEST(Workloads, QuadKernelFormsQuadGroups)
{
    WorkloadParams params;
    params.threads = 8;
    auto program = makeWorkload("mg")->build(params);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(8), program);
    system.runToCompletion();
    auto groups = system.caches().directory().communicationGroups();
    EXPECT_EQ(groups.size(), 2u) << "two quads on eight threads";
}

TEST(Workloads, ScaleGrowsTheProblem)
{
    WorkloadParams small, big;
    small.threads = big.threads = 2;
    small.scale = 1;
    big.scale = 2;
    auto workload = makeWorkload("dc");
    auto ps = workload->build(small);
    auto pb = workload->build(big);
    sim::MulticoreSystem a(sim::MachineConfig::tableI(2), ps);
    sim::MulticoreSystem b(sim::MachineConfig::tableI(2), pb);
    a.runToCompletion();
    b.runToCompletion();
    EXPECT_GT(b.progress(), a.progress() * 3 / 2);
}

TEST(Workloads, ChainLengthContractHoldsUnderThePass)
{
    // A two-phase kernel with lengths 6 and 30: at threshold 10 only
    // phase 0's store (plus the counter store) is sliceable; at 35 both.
    KernelSpec spec;
    spec.name = "contract";
    spec.outerIters = 3;
    spec.phases = {{8, 6}, {8, 30}};
    spec.comm = Comm::kNone;
    WorkloadParams params;
    params.threads = 1;
    auto program = buildKernel(spec, params);

    slice::SlicePolicyConfig at10;
    at10.lengthThreshold = 10;
    auto r10 = amnesic::SlicePass::run(
        program, sim::MachineConfig::tableI(1), at10);

    slice::SlicePolicyConfig at35;
    at35.lengthThreshold = 35;
    auto r35 = amnesic::SlicePass::run(
        program, sim::MachineConfig::tableI(1), at35);

    EXPECT_EQ(r10.hintedStores + 1, r35.hintedStores)
        << "exactly the length-30 phase store joins at threshold 35";
}

TEST(Workloads, BurstPhaseRunsExactlyOnce)
{
    KernelSpec with_burst;
    with_burst.name = "burst";
    with_burst.outerIters = 4;
    with_burst.phases = {{4, 3}};
    with_burst.burst = {16, 3};
    with_burst.comm = Comm::kNone;

    KernelSpec without = with_burst;
    without.name = "noburst";
    without.burst = {};

    WorkloadParams params;
    params.threads = 1;
    sim::MulticoreSystem a(sim::MachineConfig::tableI(1),
                           buildKernel(with_burst, params));
    sim::MulticoreSystem b(sim::MachineConfig::tableI(1),
                           buildKernel(without, params));
    a.runToCompletion();
    b.runToCompletion();
    // 16 burst cells, each (1 load + chain 3 + store + addr + loop ~4).
    auto delta = a.progress() - b.progress();
    EXPECT_GT(delta, 16u * 5u);
    EXPECT_LT(delta, 16u * 20u);
}

} // namespace
} // namespace acr::workloads
