/**
 * @file
 * Tests for the energy model: per-component accounting, the paper's
 * driving cost ratio (DRAM >> ALU), and EDP.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace acr::energy
{
namespace
{

TEST(EnergyModel, ComponentsSumToTotal)
{
    StatSet stats;
    stats.set("cores.aluOps", 1000);
    stats.set("l1i.fetches", 1500);
    stats.set("l1d.hits", 300);
    stats.set("l1d.misses", 50);
    stats.set("l2.hits", 40);
    stats.set("l2.misses", 10);
    stats.set("dram.bytes", 640);
    stats.set("nvm.bytesRead", 128);
    stats.set("nvm.bytesWritten", 256);
    stats.set("nvm.persists", 3);
    stats.set("directory.invalidationsSent", 5);
    stats.set("directory.ownerForwards", 2);
    stats.set("acr.addrMapAccesses", 20);
    stats.set("acr.operandBufferWords", 30);
    stats.set("acr.replayAluOps", 12);
    stats.set("sim.maxCycle", 10000);
    stats.set("sim.numCores", 4);

    EnergyModel model;
    double total = model.annotate(stats);

    double sum = stats.get("energy.alu") + stats.get("energy.fetch") +
                 stats.get("energy.l1d") + stats.get("energy.l2") +
                 stats.get("energy.dram") + stats.get("energy.nvm") +
                 stats.get("energy.noc") +
                 stats.get("energy.addrMap") +
                 stats.get("energy.operandBuffer") +
                 stats.get("energy.sliceReplay") +
                 stats.get("energy.static");
    EXPECT_DOUBLE_EQ(total, sum);
    EXPECT_DOUBLE_EQ(stats.get("energy.total"), total);
}

TEST(EnergyModel, ExpectedComponentValues)
{
    EnergyConfig config;
    StatSet stats;
    stats.set("cores.aluOps", 10);
    stats.set("dram.bytes", 100);
    stats.set("sim.maxCycle", 7);
    stats.set("sim.numCores", 2);

    EnergyModel model(config);
    model.annotate(stats);
    EXPECT_DOUBLE_EQ(stats.get("energy.alu"), 10 * config.aluOpPj);
    EXPECT_DOUBLE_EQ(stats.get("energy.dram"), 100 * config.dramBytePj);
    EXPECT_DOUBLE_EQ(stats.get("energy.static"),
                     7 * 2 * config.staticPjPerCoreCycle);
}

TEST(EnergyModel, NvmCountersChargeAsymmetricCosts)
{
    // The NvmStore's counters (DESIGN.md §14): reads, writes, and
    // persist fences carry distinct picojoule costs, and a run that
    // never touches NVM (any non-NVM backend) charges exactly zero.
    EnergyConfig config;
    StatSet stats;
    stats.set("nvm.bytesRead", 64);
    stats.set("nvm.bytesWritten", 16);
    stats.set("nvm.persists", 2);

    EnergyModel model(config);
    double total = model.annotate(stats);
    EXPECT_DOUBLE_EQ(stats.get("energy.nvm"),
                     64 * config.nvmReadBytePj +
                         16 * config.nvmWriteBytePj +
                         2 * config.nvmPersistPj);
    EXPECT_DOUBLE_EQ(total, stats.get("energy.nvm"));
    EXPECT_GT(config.nvmWriteBytePj, config.nvmReadBytePj)
        << "NVM writes cost more than reads (the asymmetry amnesic "
           "omission exploits)";
    EXPECT_GT(config.nvmReadBytePj, config.dramBytePj);

    StatSet untouched;
    untouched.set("dram.bytes", 100);
    model.annotate(untouched);
    EXPECT_DOUBLE_EQ(untouched.get("energy.nvm"), 0.0);
}

TEST(EnergyModel, DramDominatesAluByOrdersOfMagnitude)
{
    // The paper's premise (Sec. I): recomputing is cheaper than
    // retrieving. One word from DRAM must dwarf one ALU op.
    EnergyConfig config;
    double word_from_dram = 8 * config.dramBytePj;
    EXPECT_GT(word_from_dram, 50 * config.aluOpPj);
    // A 10-instruction Slice replay plus write-back beats a log-record
    // restore (word read + word write): Equation 4's energy side.
    double replay = 10 * config.aluOpPj + 2 * config.operandBufferPj +
                    8 * config.dramBytePj;
    double restore = 2 * 8 * config.dramBytePj;
    EXPECT_LT(replay, restore);
}

TEST(EnergyModel, MissingCountersContributeZero)
{
    StatSet stats;
    EnergyModel model;
    EXPECT_DOUBLE_EQ(model.annotate(stats), 0.0);
}

TEST(EnergyModel, EdpIsEnergyTimesDelay)
{
    EXPECT_DOUBLE_EQ(EnergyModel::edp(1000.0, 50), 50000.0);
    EXPECT_DOUBLE_EQ(EnergyModel::edp(0.0, 50), 0.0);
}

} // namespace
} // namespace acr::energy
