/**
 * @file
 * Randomized whole-stack property tests: for randomly generated kernel
 * shapes, checkpoint cadences, error counts and coordination modes, a
 * full ACR run must (a) terminate, (b) recover every injected error,
 * and (c) land on a final memory state bit-identical to the error-free
 * reference — the runtime panics otherwise (verifyFinalState).
 */

#include <gtest/gtest.h>

#include "acr/slice_pass.hh"
#include "common/rng.hh"
#include "harness/ber_runtime.hh"
#include "workloads/kernel_spec.hh"

namespace acr::harness
{
namespace
{

class RandomizedAcrRuns : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomizedAcrRuns, RecoveryIsAlwaysTransparent)
{
    Rng rng(GetParam());

    // Random kernel shape.
    workloads::KernelSpec spec;
    spec.name = "fuzz";
    spec.outerIters = 4 + static_cast<unsigned>(rng.below(6));
    unsigned phases = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned p = 0; p < phases; ++p) {
        workloads::PhaseSpec phase;
        phase.cells = 8 + static_cast<unsigned>(rng.below(40));
        phase.chainLen = 1 + static_cast<unsigned>(rng.below(45));
        spec.phases.push_back(phase);
    }
    spec.reps = 1 + static_cast<unsigned>(rng.below(2));
    spec.histogram = rng.chance(0.3);
    if (rng.chance(0.4))
        spec.burst = {32 + static_cast<unsigned>(rng.below(64)),
                      1 + static_cast<unsigned>(rng.below(60))};
    switch (rng.below(5)) {
      case 0: spec.comm = workloads::Comm::kNone; break;
      case 1: spec.comm = workloads::Comm::kPair; break;
      case 2: spec.comm = workloads::Comm::kQuad; break;
      case 3: spec.comm = workloads::Comm::kRing; break;
      default: spec.comm = workloads::Comm::kAllToAll; break;
    }
    spec.commPeriod = 1u << rng.below(3);

    unsigned threads = 2u << rng.below(2);  // 2 or 4
    workloads::WorkloadParams params;
    params.threads = threads;
    params.seed = rng.next();
    isa::Program program = workloads::buildKernel(spec, params);
    ASSERT_EQ(program.validate(), "");

    auto machine = sim::MachineConfig::tableI(threads);

    slice::SlicePolicyConfig policy;
    policy.lengthThreshold = 5 + static_cast<unsigned>(rng.below(30));
    auto pass = amnesic::SlicePass::run(program, machine, policy);

    ExperimentConfig config;
    config.mode = rng.chance(0.8) ? BerMode::kReCkpt : BerMode::kCkpt;
    config.coordination = rng.chance(0.5) ? ckpt::Coordination::kLocal
                                          : ckpt::Coordination::kGlobal;
    config.numCheckpoints = 3 + static_cast<unsigned>(rng.below(20));
    config.numErrors = static_cast<unsigned>(rng.below(4));
    config.sliceThreshold = policy.lengthThreshold;
    config.seed = rng.next();
    config.verifyFinalState = true;  // the property under test

    const isa::Program &to_run =
        config.mode == BerMode::kReCkpt ? pass.program : program;
    auto result = BerRuntime::run(to_run, machine, config, pass);

    EXPECT_GT(result.cycles, 0u);
    EXPECT_EQ(result.checkpointsEstablished + 0u,
              result.history.size());
    std::uint64_t detected =
        static_cast<std::uint64_t>(result.stats.get("fault.detected"));
    std::uint64_t dropped =
        static_cast<std::uint64_t>(result.stats.get("fault.dropped"));
    EXPECT_EQ(detected + dropped, config.numErrors);
    EXPECT_EQ(result.recoveries, detected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedAcrRuns,
                         testing::Range<std::uint64_t>(100, 124));

/** The same configuration must reproduce the same measurements. */
TEST(DeterminismProperty, IdenticalConfigsProduceIdenticalResults)
{
    workloads::KernelSpec spec;
    spec.name = "det";
    spec.outerIters = 5;
    spec.phases = {{24, 7}, {16, 20}};
    spec.comm = workloads::Comm::kPair;
    workloads::WorkloadParams params;
    params.threads = 4;
    auto program = workloads::buildKernel(spec, params);
    auto machine = sim::MachineConfig::tableI(4);
    slice::SlicePolicyConfig policy;
    auto pass = amnesic::SlicePass::run(program, machine, policy);

    ExperimentConfig config;
    config.mode = BerMode::kReCkpt;
    config.numCheckpoints = 8;
    config.numErrors = 2;

    auto a = BerRuntime::run(pass.program, machine, config, pass);
    auto b = BerRuntime::run(pass.program, machine, config, pass);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
    EXPECT_EQ(a.ckptBytesStored, b.ckptBytesStored);
    EXPECT_EQ(a.ckptBytesOmitted, b.ckptBytesOmitted);
    EXPECT_EQ(a.recoveries, b.recoveries);
}

/** Error seeds shift where errors land but never break transparency. */
class ErrorSeedSweep : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ErrorSeedSweep, AnyErrorPlacementRecovers)
{
    static isa::Program program = [] {
        workloads::KernelSpec spec;
        spec.name = "seed";
        spec.outerIters = 6;
        spec.phases = {{20, 5}, {12, 25}};
        spec.histogram = true;
        spec.comm = workloads::Comm::kRing;
        workloads::WorkloadParams params;
        params.threads = 4;
        return workloads::buildKernel(spec, params);
    }();
    static auto machine = sim::MachineConfig::tableI(4);
    static auto pass = amnesic::SlicePass::run(
        program, machine, slice::SlicePolicyConfig{});

    ExperimentConfig config;
    config.mode = BerMode::kReCkpt;
    config.numCheckpoints = 10;
    config.numErrors = 2;
    config.seed = GetParam();
    auto result = BerRuntime::run(pass.program, machine, config, pass);
    EXPECT_EQ(result.recoveries +
                  static_cast<std::uint64_t>(
                      result.stats.get("fault.dropped")),
              2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErrorSeedSweep,
                         testing::Range<std::uint64_t>(1, 13));

} // namespace
} // namespace acr::harness
