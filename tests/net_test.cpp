/**
 * @file
 * Transport-layer tests (DESIGN.md §15): strict HOST:PORT and
 * ACR_NET_FAULT parsing, frame round trips and the garbled-header
 * guard, fault injection on a socketpair, the hello handshake record,
 * and Supervisor::runListen driven by fake in-process TCP workers —
 * deaths between and inside frames, mid-point deaths, handshake
 * rejection, and the empty-fleet join-grace quarantine. The full
 * kill/partition/garble campaign against real worker processes lives
 * in tests/distributed_smoke.sh.
 */

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/options.hh"
#include "harness/net.hh"
#include "harness/supervisor.hh"

namespace
{

using namespace acr;
using namespace acr::harness;

std::vector<GridPoint>
tinyGrid()
{
    std::vector<GridPoint> points;
    ExperimentConfig config;
    config.mode = BerMode::kNoCkpt;
    points.push_back({"is", config, 2});
    config.mode = BerMode::kCkpt;
    points.push_back({"is", config, 2});
    config.mode = BerMode::kReCkpt;
    points.push_back({"is", config, 2});
    return points;
}

/** A distinguishable successful result. */
ExperimentResult
fakeResult(std::uint64_t cycles)
{
    ExperimentResult result;
    result.cycles = cycles;
    result.energyPj = static_cast<double>(cycles) * 2.0;
    result.edp = static_cast<double>(cycles) * 3.0;
    result.checkpointsEstablished = 7;
    return result;
}

/** Nonblocking socketpair wrapped in FrameChannels for both ends. */
struct Pair
{
    std::unique_ptr<net::FrameChannel> a, b;

    explicit Pair(net::FaultPlan *fault_on_a = nullptr)
    {
        int fds[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0,
                               fds),
                  0);
        a = std::make_unique<net::FrameChannel>(fds[0], fault_on_a);
        b = std::make_unique<net::FrameChannel>(fds[1]);
    }
};

/** Flush until drained (or the injected close lands). */
net::FrameChannel::Io
flushAll(net::FrameChannel &channel, std::string &error)
{
    while (channel.isOpen() && channel.wantsWrite()) {
        if (channel.flushWrites(error) == net::FrameChannel::Io::kClosed)
            return net::FrameChannel::Io::kClosed;
    }
    return channel.flushWrites(error);
}

// --- Strict endpoint parsing (the shared parseStrict* path) ---

TEST(NetParse, HostPortStrict)
{
    std::string host;
    std::uint16_t port = 0;

    EXPECT_TRUE(parseHostPort("127.0.0.1:8080", host, port, false));
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8080);

    EXPECT_TRUE(parseHostPort("0.0.0.0:0", host, port, true));
    EXPECT_EQ(port, 0);

    // Port 0 only where the caller can resolve it (the listen side).
    EXPECT_FALSE(parseHostPort("h:0", host, port, false));
    // Strict digits: trailing garbage, signs, spaces, overflow.
    EXPECT_FALSE(parseHostPort("h:80x", host, port, false));
    EXPECT_FALSE(parseHostPort("h:+80", host, port, false));
    EXPECT_FALSE(parseHostPort("h: 80", host, port, false));
    EXPECT_FALSE(parseHostPort("h:65536", host, port, false));
    EXPECT_FALSE(parseHostPort("h:", host, port, false));
    EXPECT_FALSE(parseHostPort(":80", host, port, false));
    EXPECT_FALSE(parseHostPort("no-port", host, port, false));
}

TEST(NetParse, EndpointFatalNamesTheFlag)
{
    EXPECT_EXIT(net::parseEndpoint("nope", "--connect", false),
                testing::ExitedWithCode(1), "--connect");
    EXPECT_EXIT(net::parseEndpoint("h:0", "--connect", false),
                testing::ExitedWithCode(1), "--connect");
    EXPECT_EXIT(net::parseEndpoint("h:70000", "--listen", true),
                testing::ExitedWithCode(1), "--listen");
}

TEST(NetParse, FaultPlanStrict)
{
    auto plan = net::FaultPlan::parse("drop-after=3");
    EXPECT_EQ(plan.kind, net::FaultPlan::Kind::kDropAfter);
    EXPECT_EQ(plan.frame, 3u);
    EXPECT_TRUE(plan.active());

    plan = net::FaultPlan::parse("torn=1");
    EXPECT_EQ(plan.kind, net::FaultPlan::Kind::kTorn);

    plan = net::FaultPlan::parse("garble=7");
    EXPECT_EQ(plan.kind, net::FaultPlan::Kind::kGarble);

    plan = net::FaultPlan::parse("stall=2:0.25");
    EXPECT_EQ(plan.kind, net::FaultPlan::Kind::kStall);
    EXPECT_EQ(plan.frame, 2u);
    EXPECT_DOUBLE_EQ(plan.stallSec, 0.25);

    EXPECT_EXIT(net::FaultPlan::parse("drop-after=0"),
                testing::ExitedWithCode(1), "ACR_NET_FAULT");
    EXPECT_EXIT(net::FaultPlan::parse("torn=2x"),
                testing::ExitedWithCode(1), "ACR_NET_FAULT");
    EXPECT_EXIT(net::FaultPlan::parse("stall=2"),
                testing::ExitedWithCode(1), "ACR_NET_FAULT");
    EXPECT_EXIT(net::FaultPlan::parse("unplug=1"),
                testing::ExitedWithCode(1), "ACR_NET_FAULT");

    // Unset environment: no fault armed.
    ::unsetenv("ACR_NET_FAULT");
    EXPECT_EQ(net::FaultPlan::fromEnv().kind,
              net::FaultPlan::Kind::kNone);
    EXPECT_FALSE(net::FaultPlan::fromEnv().active());
}

// --- Framing ---

TEST(NetFrame, RoundTripOverSocketpair)
{
    Pair pair;
    pair.a->send(net::FrameType::kWire, "{\"hello\":1}");
    pair.a->send(net::FrameType::kPing, "");
    std::string error;
    ASSERT_EQ(flushAll(*pair.a, error), net::FrameChannel::Io::kOk);

    std::vector<net::Frame> frames;
    ASSERT_EQ(pair.b->readFrames(frames, error),
              net::FrameChannel::Io::kOk);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, net::FrameType::kWire);
    EXPECT_EQ(frames[0].payload, "{\"hello\":1}");
    EXPECT_EQ(frames[1].type, net::FrameType::kPing);
    EXPECT_TRUE(frames[1].payload.empty());
}

TEST(NetFrame, FramesRacingACloseStillDeliver)
{
    Pair pair;
    pair.a->send(net::FrameType::kShutdown, "");
    std::string error;
    ASSERT_EQ(flushAll(*pair.a, error), net::FrameChannel::Io::kOk);
    pair.a->close();

    // The receiver sees the frame and the EOF in one read pass; the
    // frame must not be discarded along with the close.
    std::vector<net::Frame> frames;
    EXPECT_EQ(pair.b->readFrames(frames, error),
              net::FrameChannel::Io::kClosed);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, net::FrameType::kShutdown);
}

TEST(NetFrame, GarbledLengthHeaderRejected)
{
    Pair pair;
    // A length claiming far more than kMaxFramePayload: reject the
    // stream, don't attempt the allocation.
    const unsigned char bogus[5] = {0xff, 0xff, 0xff, 0xff, 1};
    ASSERT_EQ(::send(pair.a->fd(), bogus, sizeof(bogus), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(bogus)));
    std::vector<net::Frame> frames;
    std::string error;
    EXPECT_EQ(pair.b->readFrames(frames, error),
              net::FrameChannel::Io::kClosed);
    EXPECT_TRUE(frames.empty());
    EXPECT_NE(error.find("garbled"), std::string::npos) << error;
    EXPECT_FALSE(pair.b->isOpen());
}

TEST(NetFrame, UnknownFrameTypeRejected)
{
    Pair pair;
    const unsigned char bogus[5] = {0, 0, 0, 0, 99};
    ASSERT_EQ(::send(pair.a->fd(), bogus, sizeof(bogus), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(bogus)));
    std::vector<net::Frame> frames;
    std::string error;
    EXPECT_EQ(pair.b->readFrames(frames, error),
              net::FrameChannel::Io::kClosed);
    EXPECT_NE(error.find("unknown frame type"), std::string::npos);
}

// --- Fault injection ---

TEST(NetFault, DropAfterClosesOnceFrameNIsOut)
{
    net::FaultPlan fault = net::FaultPlan::parse("drop-after=2");
    Pair pair(&fault);
    pair.a->send(net::FrameType::kWire, "one");
    pair.a->send(net::FrameType::kWire, "two");
    std::string error;
    EXPECT_EQ(flushAll(*pair.a, error), net::FrameChannel::Io::kClosed);
    EXPECT_TRUE(fault.fired);
    EXPECT_FALSE(pair.a->isOpen());

    // The peer receives both complete frames, then the EOF.
    std::vector<net::Frame> frames;
    EXPECT_EQ(pair.b->readFrames(frames, error),
              net::FrameChannel::Io::kClosed);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[1].payload, "two");
}

TEST(NetFault, TornFrameNeverCompletes)
{
    net::FaultPlan fault = net::FaultPlan::parse("torn=1");
    Pair pair(&fault);
    pair.a->send(net::FrameType::kWire, "half of this never arrives");
    std::string error;
    EXPECT_EQ(flushAll(*pair.a, error), net::FrameChannel::Io::kClosed);

    // The peer sees a partial frame and then the close: no frame.
    std::vector<net::Frame> frames;
    EXPECT_EQ(pair.b->readFrames(frames, error),
              net::FrameChannel::Io::kClosed);
    EXPECT_TRUE(frames.empty());
}

TEST(NetFault, GarbledPayloadKeepsLengthConsistent)
{
    net::FaultPlan fault = net::FaultPlan::parse("garble=1");
    Pair pair(&fault);
    const std::string payload = "{\"v\":5,\"type\":\"x\"}";
    pair.a->send(net::FrameType::kWire, payload);
    std::string error;
    ASSERT_EQ(flushAll(*pair.a, error), net::FrameChannel::Io::kOk);
    EXPECT_TRUE(pair.a->isOpen());

    // A full frame arrives — same length, different bytes — so the
    // corruption must be caught at record decode, not at the framing
    // layer.
    std::vector<net::Frame> frames;
    ASSERT_EQ(pair.b->readFrames(frames, error),
              net::FrameChannel::Io::kOk);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].payload.size(), payload.size());
    EXPECT_NE(frames[0].payload, payload);
    EXPECT_THROW(wire::decodeLine(frames[0].payload),
                 serde::SerdeError);

    // One-shot: the next frame travels clean.
    pair.a->send(net::FrameType::kWire, payload);
    ASSERT_EQ(flushAll(*pair.a, error), net::FrameChannel::Io::kOk);
    frames.clear();
    ASSERT_EQ(pair.b->readFrames(frames, error),
              net::FrameChannel::Io::kOk);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].payload, payload);
}

// --- The hello record ---

TEST(NetHello, RoundTripsThroughTheWire)
{
    wire::HelloRecord hello;
    hello.bench = "fig06_time_overhead";
    hello.gridPoints = 40;
    hello.gridHash = 0xdeadbeefcafef00dULL;
    hello.netVersion = net::kProtocolVersion;

    const auto record = wire::decodeLine(wire::encodeHelloLine(hello));
    ASSERT_EQ(record.type, wire::Record::Type::kHello);
    EXPECT_EQ(record.hello.bench, hello.bench);
    EXPECT_EQ(record.hello.gridPoints, hello.gridPoints);
    EXPECT_EQ(record.hello.gridHash, hello.gridHash);
    EXPECT_EQ(record.hello.netVersion, hello.netVersion);
}

// --- Supervisor::runListen against fake in-process workers ---

/** Deliveries recorded from runListen's callback. */
struct Deliveries
{
    std::mutex mutex;
    std::vector<std::pair<std::size_t, ExperimentResult>> list;

    Supervisor::Deliver
    sink()
    {
        return [this](const Supervisor::Task &task,
                      ExperimentResult result) {
            std::lock_guard<std::mutex> lock(mutex);
            list.emplace_back(task.gridIndex, std::move(result));
        };
    }
};

/** Grab a loopback port the coordinator can (re)bind immediately. */
std::uint16_t
pickPort()
{
    net::Endpoint bound;
    const int fd = net::listenOn({"127.0.0.1", 0}, bound);
    ::close(fd);
    return bound.port;
}

/** Dial the coordinator, retrying while it binds. */
int
dialCoordinator(std::uint16_t port)
{
    const net::Endpoint endpoint{"127.0.0.1", port};
    for (int i = 0; i < 250; ++i) {
        std::string error;
        const int fd = net::connectOnce(endpoint, error);
        if (fd >= 0)
            return fd;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
}

/** Blocking-ish frame wait on a nonblocking channel. */
bool
awaitFrame(net::FrameChannel &channel, std::deque<net::Frame> &inbox,
           net::Frame &frame, int timeout_ms = 10000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
        if (!inbox.empty()) {
            frame = inbox.front();
            inbox.pop_front();
            return true;
        }
        if (!channel.isOpen() ||
            std::chrono::steady_clock::now() >= deadline)
            return false;
        std::string error;
        if (channel.wantsWrite())
            channel.flushWrites(error);
        pollfd pfd{channel.fd(), POLLIN, 0};
        ::poll(&pfd, 1, 50);
        std::vector<net::Frame> frames;
        channel.readFrames(frames, error);
        for (auto &f : frames)
            inbox.push_back(std::move(f));
    }
}

wire::HelloRecord
workerHello(const std::vector<GridPoint> &grid)
{
    wire::HelloRecord hello;
    hello.bench = "net_test";
    hello.gridPoints = grid.size();
    hello.gridHash = wire::gridHash(grid);
    hello.netVersion = net::kProtocolVersion;
    return hello;
}

Supervisor::NetOptions
coordinatorOptions(const std::vector<GridPoint> &grid,
                   std::uint16_t port)
{
    Supervisor::NetOptions net_options;
    net_options.listen = {"127.0.0.1", port};
    net_options.heartbeatSec = 1;
    net_options.bench = "net_test";
    net_options.gridPoints = grid.size();
    net_options.gridHash = wire::gridHash(grid);
    return net_options;
}

/** A fake worker: handshake, answer dealt points with fakeResult(100 +
 *  index), answer pings, stop on shutdown/close — or after
 *  @p quit_after answered points, slamming the connection shut
 *  mid-membership. */
void
fakeWorker(std::uint16_t port, const std::vector<GridPoint> &grid,
           std::size_t quit_after = SIZE_MAX)
{
    std::signal(SIGPIPE, SIG_IGN);
    const int fd = dialCoordinator(port);
    ASSERT_GE(fd, 0);
    net::FrameChannel channel(fd);
    std::string error;
    channel.send(net::FrameType::kWire,
                 wire::encodeHelloLine(workerHello(grid)));
    std::deque<net::Frame> inbox;
    std::size_t answered = 0;
    net::Frame frame;
    while (awaitFrame(channel, inbox, frame)) {
        if (frame.type == net::FrameType::kShutdown)
            return;
        if (frame.type == net::FrameType::kPing) {
            channel.send(net::FrameType::kPong, "");
            continue;
        }
        if (frame.type != net::FrameType::kWire)
            continue;
        const auto record = wire::decodeLine(frame.payload);
        if (record.type != wire::Record::Type::kPoint)
            continue;  // the coordinator's own hello
        channel.send(net::FrameType::kWire,
                     wire::encodeResultLine(
                         {record.point.index,
                          fakeResult(100 + record.point.index)}));
        while (channel.isOpen() && channel.wantsWrite())
            channel.flushWrites(error);
        if (++answered >= quit_after)
            return;  // abrupt close (channel destructor)
    }
}

TEST(RunListen, ElasticFleetSurvivesDeathsBetweenAndInsideFrames)
{
    const auto grid = tinyGrid();
    const std::uint16_t port = pickPort();
    std::vector<Supervisor::Task> tasks;
    for (std::size_t i = 0; i < grid.size(); ++i)
        tasks.push_back({i, i, &grid[i]});

    Supervisor::Options options;
    options.retries = 2;
    options.backoffBaseSec = 0.01;
    Supervisor supervisor(options);

    Deliveries delivered;
    StatSet stats;
    std::thread coordinator([&] {
        supervisor.runListen(tasks, coordinatorOptions(grid, port),
                             delivered.sink(), stats);
    });

    // A connection that dies inside a frame — half a hello, then an
    // abrupt close — must not take down the coordinator (which writes
    // its own hello to the dead socket: EPIPE, never SIGPIPE).
    {
        const int fd = dialCoordinator(port);
        ASSERT_GE(fd, 0);
        const std::string hello =
            net::encodeFrame(net::FrameType::kWire,
                             wire::encodeHelloLine(workerHello(grid)));
        const std::string half = hello.substr(0, hello.size() / 2);
        ASSERT_EQ(::send(fd, half.data(), half.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(half.size()));
        ::close(fd);
    }

    // A member that answers one point and then dies between frames:
    // any point it still held is re-dealt to the survivor.
    std::thread quitter(
        [&] { fakeWorker(port, grid, /*quit_after=*/1); });
    quitter.join();

    std::thread survivor([&] { fakeWorker(port, grid); });
    coordinator.join();
    survivor.join();

    ASSERT_EQ(delivered.list.size(), grid.size());
    for (const auto &[index, result] : delivered.list) {
        EXPECT_FALSE(result.failed) << "point " << index;
        EXPECT_EQ(result.cycles, 100 + index);
    }
    EXPECT_GE(stats.get("sweep.netJoins"), 2.0);
    EXPECT_EQ(stats.get("sweep.quarantined"), 0.0);
}

TEST(RunListen, HandshakeMismatchIsRejected)
{
    const auto grid = tinyGrid();
    const std::uint16_t port = pickPort();
    std::vector<Supervisor::Task> tasks;
    for (std::size_t i = 0; i < grid.size(); ++i)
        tasks.push_back({i, i, &grid[i]});

    Supervisor::Options options;
    options.retries = 0;
    Supervisor supervisor(options);

    Deliveries delivered;
    StatSet stats;
    std::thread coordinator([&] {
        supervisor.runListen(tasks, coordinatorOptions(grid, port),
                             delivered.sink(), stats);
    });

    // A worker offering a skewed grid hash: rejected at handshake,
    // dealt nothing, connection closed by the coordinator.
    {
        const int fd = dialCoordinator(port);
        ASSERT_GE(fd, 0);
        net::FrameChannel channel(fd);
        auto hello = workerHello(grid);
        hello.gridHash ^= 1;
        channel.send(net::FrameType::kWire,
                     wire::encodeHelloLine(hello));
        std::deque<net::Frame> inbox;
        net::Frame frame;
        // The coordinator's own hello arrives, then the close; no
        // point record may ever reach this impostor.
        while (awaitFrame(channel, inbox, frame)) {
            if (frame.type != net::FrameType::kWire)
                continue;
            const auto record = wire::decodeLine(frame.payload);
            EXPECT_NE(record.type, wire::Record::Type::kPoint);
        }
        EXPECT_FALSE(channel.isOpen());
    }

    std::thread honest([&] { fakeWorker(port, grid); });
    coordinator.join();
    honest.join();

    ASSERT_EQ(delivered.list.size(), grid.size());
    for (const auto &[index, result] : delivered.list)
        EXPECT_FALSE(result.failed) << "point " << index;
    EXPECT_EQ(stats.get("sweep.quarantined"), 0.0);
}

TEST(RunListen, EmptyFleetQuarantinesInsteadOfHanging)
{
    const auto grid = tinyGrid();
    const std::uint16_t port = pickPort();
    std::vector<Supervisor::Task> tasks = {{0, 0, &grid[0]}};

    Supervisor::Options options;
    options.retries = 2;
    Supervisor supervisor(options);

    Deliveries delivered;
    StatSet stats;
    // Nobody ever connects: once the join grace (8 heartbeats)
    // expires, the queued point is quarantined and runListen returns —
    // the sweep degrades to a FAILED cell, it does not hang.
    supervisor.runListen(tasks, coordinatorOptions(grid, port),
                         delivered.sink(), stats);

    ASSERT_EQ(delivered.list.size(), 1u);
    EXPECT_TRUE(delivered.list[0].second.failed);
    EXPECT_NE(delivered.list[0].second.failReason.find(
                  "no connected workers"),
              std::string::npos)
        << delivered.list[0].second.failReason;
    EXPECT_EQ(stats.get("sweep.quarantined"), 1.0);
}

} // namespace
