/**
 * @file
 * Tests for the Equation 1-4 decomposition helpers, including the
 * paper's Eq. 4 condition on real runs: ACR's per-recovery roll-back
 * (restore of the shrunken checkpoint + recomputation) must not exceed
 * the baseline's roll-back cost.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/analysis.hh"
#include "harness/runner.hh"

namespace acr::harness
{
namespace
{

TEST(Analysis, ExtractsTheBreakdownFromStats)
{
    ExperimentResult result;
    result.stats.set("ckpt.establishments", 10);
    result.stats.set("ckpt.establishStallCycles", 5000);
    result.stats.set("ckpt.loggedBytes", 2048);
    result.stats.set("ckpt.omittedBytes", 1024);
    result.stats.set("rec.recoveries", 2);
    result.stats.set("rec.wasteCycles", 600);
    result.stats.set("rec.rollbackCycles", 400);
    result.stats.set("rec.restoredWords", 50);
    result.stats.set("rec.recomputedWords", 30);
    result.stats.set("acr.replayAluOps", 150);

    BerBreakdown b = analyze(result);
    EXPECT_DOUBLE_EQ(b.checkpoints, 10);
    EXPECT_DOUBLE_EQ(b.meanEstablishCycles(), 500);
    EXPECT_DOUBLE_EQ(b.meanRecoveryCycles(), 500);
    EXPECT_DOUBLE_EQ(b.recomputedWords, 30);

    std::ostringstream oss;
    printBreakdown(oss, b);
    EXPECT_NE(oss.str().find("#chk = 10"), std::string::npos);
    EXPECT_NE(oss.str().find("o_waste = 600"), std::string::npos);
}

TEST(Analysis, MeansAreZeroSafe)
{
    BerBreakdown b;
    EXPECT_DOUBLE_EQ(b.meanEstablishCycles(), 0);
    EXPECT_DOUBLE_EQ(b.meanRecoveryCycles(), 0);
}

TEST(Analysis, Eq4VacuouslyHoldsWithoutRecoveries)
{
    ExperimentResult a, b;
    EXPECT_TRUE(eq4Holds(a, b));
}

TEST(Analysis, Eq4HoldsOnRealRuns)
{
    // The condition the paper derives for ACR's profitability during
    // recovery (Sec. I, Equation 4), measured on every kernel.
    Runner runner(4);
    for (const auto &name : workloads::allWorkloadNames()) {
        ExperimentConfig config;
        config.mode = BerMode::kCkpt;
        config.numErrors = 1;
        config.numCheckpoints = 15;
        config.sliceThreshold = 0;
        auto baseline = runner.run(name, config);

        config.mode = BerMode::kReCkpt;
        auto acr_run = runner.run(name, config);

        // Slack for DRAM queueing noise between the two runs.
        EXPECT_TRUE(eq4Holds(acr_run, baseline, 1.05)) << name;
    }
}

} // namespace
} // namespace acr::harness
