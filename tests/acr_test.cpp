/**
 * @file
 * Tests for the ACR layer: AddrMap semantics, the ASSOC-ADDR lifecycle
 * in AcrEngine (association, staleness on non-recomputable overwrites,
 * retention expiry, rollback erasure), and the compiler pass.
 */

#include <gtest/gtest.h>

#include <random>
#include <unordered_map>

#include "acr/acr_engine.hh"
#include "acr/addr_map.hh"
#include "acr/slice_pass.hh"
#include "isa/builder.hh"
#include "workloads/kernel_spec.hh"

namespace acr::amnesic
{
namespace
{

// ---------------------------------------------------------------------
// AddrMap
// ---------------------------------------------------------------------

struct MapRig
{
    MapRig() : buf(1024) {}

    std::shared_ptr<slice::SliceInstance>
    instance()
    {
        slice::StaticSlice s;
        s.code.push_back({isa::Opcode::kMovi, 7, slice::kNoSrc,
                          slice::kNoSrc});
        return slice::SliceInstance::create(repo.intern(std::move(s)),
                                            {}, buf);
    }

    slice::SliceRepository repo;
    slice::OperandBufferAccounting buf;
};

TEST(AddrMap, InsertLookupErase)
{
    MapRig rig;
    AddrMap map(4);
    auto inst = rig.instance();
    EXPECT_TRUE(map.insert(100, inst, 1));
    EXPECT_EQ(map.lookup(100), inst);
    EXPECT_EQ(map.lookup(101), nullptr);
    map.erase(100);
    EXPECT_EQ(map.lookup(100), nullptr);
}

TEST(AddrMap, ReplacementKeepsTheLatestProducer)
{
    MapRig rig;
    AddrMap map(4);
    auto a = rig.instance();
    auto b = rig.instance();
    map.insert(100, a, 1);
    map.insert(100, b, 2);
    EXPECT_EQ(map.lookup(100), b);
    EXPECT_EQ(map.size(), 1u);
}

TEST(AddrMap, CapacityRejectsNewAddresses)
{
    MapRig rig;
    AddrMap map(2);
    EXPECT_TRUE(map.insert(1, rig.instance(), 1));
    EXPECT_TRUE(map.insert(2, rig.instance(), 1));
    EXPECT_FALSE(map.insert(3, rig.instance(), 1));
    EXPECT_EQ(map.overflows(), 1u);
    // Replacing an existing key works even at capacity.
    EXPECT_TRUE(map.insert(2, rig.instance(), 2));
    EXPECT_EQ(map.peakSize(), 2u);
}

TEST(AddrMap, ExpiryImplementsTwoCheckpointRetention)
{
    MapRig rig;
    AddrMap map(8);
    map.insert(1, rig.instance(), 1);
    map.insert(2, rig.instance(), 2);
    map.insert(3, rig.instance(), 3);
    map.expireOlderThan(2);
    EXPECT_EQ(map.lookup(1), nullptr);
    EXPECT_NE(map.lookup(2), nullptr);
    EXPECT_NE(map.lookup(3), nullptr);
}

TEST(AddrMap, UpdateWithOlderIntervalKeepsTheNewerTag)
{
    // A re-posted rollback-erased corruption can replay an ASSOC-ADDR
    // carrying an older interval tag. The replacement must adopt the
    // new producer but keep the max interval, or the entry expires one
    // retention window early.
    MapRig rig;
    AddrMap map(4);
    auto fresh = rig.instance();
    auto stale = rig.instance();
    map.insert(100, fresh, 5);
    map.insert(100, stale, 3);
    EXPECT_EQ(map.lookup(100), stale);
    map.expireOlderThan(5);
    EXPECT_NE(map.lookup(100), nullptr)
        << "older-interval update must not shorten retention";
    map.expireOlderThan(6);
    EXPECT_EQ(map.lookup(100), nullptr);
}

TEST(AddrMap, InsertAfterExpiryKeepsProbeChainsReachable)
{
    // Addresses that collide into one probe run, partially expired,
    // then re-inserted: every survivor and every re-insert must stay
    // reachable (no tombstone holes, no orphaned displaced entries).
    MapRig rig;
    AddrMap map(64);
    // Fibonacci-hash collisions are hard to construct by hand, so use
    // volume: many keys, expire the odd intervals, reinsert, verify
    // every key individually.
    for (Addr a = 0; a < 48; ++a)
        ASSERT_TRUE(map.insert(a * 8, rig.instance(), 1 + (a & 1)));
    map.expireOlderThan(2);
    EXPECT_EQ(map.size(), 24u);
    for (Addr a = 0; a < 48; ++a) {
        if (a & 1)
            EXPECT_NE(map.lookup(a * 8), nullptr) << "addr " << a * 8;
        else
            EXPECT_EQ(map.lookup(a * 8), nullptr) << "addr " << a * 8;
    }
    for (Addr a = 0; a < 48; a += 2)
        ASSERT_TRUE(map.insert(a * 8, rig.instance(), 3));
    for (Addr a = 0; a < 48; ++a)
        EXPECT_NE(map.lookup(a * 8), nullptr) << "addr " << a * 8;
    EXPECT_EQ(map.size(), 48u);
}

TEST(AddrMap, DifferentialAgainstReferenceModel)
{
    // Randomized mixed workload against a trivially-correct
    // std::unordered_map model: locks the observable semantics of the
    // open-addressing table (backward-shift deletion, keep-max interval
    // on update, capacity rejection, batched expiry) regardless of the
    // internal probe layout.
    struct Entry
    {
        std::shared_ptr<slice::SliceInstance> instance;
        std::uint64_t interval;
    };
    MapRig rig;
    constexpr std::size_t kCapacity = 96;
    AddrMap map(kCapacity);
    std::unordered_map<Addr, Entry> model;
    std::mt19937_64 rng(0xACD5EEDull);
    // Small address universe so inserts, erases, and updates all hit.
    std::uniform_int_distribution<Addr> pickAddr(0, 255);
    std::uniform_int_distribution<int> pickOp(0, 99);
    std::uint64_t interval = 1;
    std::uint64_t minLive = 0;
    std::uint64_t modelOverflows = 0;
    std::size_t modelPeak = 0;

    for (int step = 0; step < 20000; ++step) {
        int op = pickOp(rng);
        Addr addr = pickAddr(rng) * 8;
        if (op < 55) { // insert / update
            auto inst = rig.instance();
            std::uint64_t tag =
                interval - (rng() % 3 && interval > minLive ? 1 : 0);
            bool ok = map.insert(addr, inst, tag);
            auto it = model.find(addr);
            if (it != model.end()) {
                ASSERT_TRUE(ok);
                it->second.instance = inst;
                it->second.interval = std::max(it->second.interval, tag);
            } else if (model.size() >= kCapacity) {
                ASSERT_FALSE(ok);
                ++modelOverflows;
            } else {
                ASSERT_TRUE(ok);
                model[addr] = {inst, tag};
                modelPeak = std::max(modelPeak, model.size());
            }
        } else if (op < 85) { // erase
            map.erase(addr);
            model.erase(addr);
        } else if (op < 97) { // lookup spot-check
            auto it = model.find(addr);
            ASSERT_EQ(map.lookup(addr),
                      it == model.end() ? nullptr : it->second.instance)
                << "step " << step << " addr " << addr;
        } else { // advance the interval clock and expire
            ++interval;
            minLive = interval > 2 ? interval - 2 : 0;
            map.expireOlderThan(minLive);
            std::erase_if(model, [&](const auto &kv) {
                return kv.second.interval < minLive;
            });
        }
        ASSERT_EQ(map.size(), model.size()) << "step " << step;
    }
    // Full sweep: every model entry reachable, nothing extra.
    for (const auto &[addr, entry] : model)
        ASSERT_EQ(map.lookup(addr), entry.instance) << "addr " << addr;
    EXPECT_EQ(map.overflows(), modelOverflows);
    EXPECT_EQ(map.peakSize(), modelPeak);
}

// ---------------------------------------------------------------------
// AcrEngine, driven with synthetic events
// ---------------------------------------------------------------------

struct EngineRig
{
    explicit EngineRig(AcrConfig config = AcrConfig{})
        : slicer(1), engine(config, slicer, stats)
    {
    }

    /** Feed "movi r1, value" so r1 has a 1-op slice behind it. */
    void
    produce(Word value)
    {
        moviInst = {isa::Opcode::kMovi, 1, 0, 0,
                    static_cast<SWord>(value), false};
        cpu::InstrEvent e;
        e.core = 0;
        e.inst = &moviInst;
        e.result = value;
        slicer.observe(e);
    }

    /** Feed "store [r2], r1" with the given hint. */
    void
    store(Addr addr, Word value, bool hinted)
    {
        storeInst = {isa::Opcode::kStore, 0, 2, 1, 0, hinted};
        cpu::InstrEvent e;
        e.core = 0;
        e.inst = &storeInst;
        e.addr = addr;
        e.result = value;
        engine.onStoreRetired(e);
    }

    StatSet stats;
    slice::SliceEngine slicer;
    AcrEngine engine;
    isa::Instruction moviInst;
    isa::Instruction storeInst;
};

TEST(AcrEngine, HintedStoreCreatesAssociation)
{
    EngineRig rig;
    rig.produce(42);
    rig.store(500, 42, true);
    auto inst = rig.engine.currentValueSlice(500);
    ASSERT_NE(inst, nullptr);
    slice::ReplayCost cost;
    EXPECT_EQ(rig.engine.replay(*inst, &cost), 42u);
    rig.engine.exportStats();  // flush the deferred hot counters
    EXPECT_DOUBLE_EQ(rig.stats.get("acr.captures"), 1.0);
    EXPECT_GT(rig.stats.get("acr.addrMapAccesses"), 0.0);
}

TEST(AcrEngine, UnhintedStoreKillsStaleAssociation)
{
    EngineRig rig;
    rig.produce(42);
    rig.store(500, 42, true);
    ASSERT_NE(rig.engine.currentValueSlice(500), nullptr);
    rig.produce(43);
    rig.store(500, 43, false);  // overwrite without a Slice
    EXPECT_EQ(rig.engine.currentValueSlice(500), nullptr)
        << "the current value is no longer recomputable";
}

TEST(AcrEngine, AssociationTracksTheLatestValue)
{
    EngineRig rig;
    rig.produce(1);
    rig.store(500, 1, true);
    rig.produce(2);
    rig.store(500, 2, true);
    auto inst = rig.engine.currentValueSlice(500);
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(rig.engine.replay(*inst, nullptr), 2u);
}

TEST(AcrEngine, DefaultRetentionKeepsValidAssociationsForever)
{
    // Default policy: the mapping describes the current memory value,
    // which stays recomputable however many checkpoints pass.
    EngineRig rig;
    rig.produce(1);
    rig.store(500, 1, true);  // interval 1
    for (std::uint64_t i = 2; i < 20; ++i)
        rig.engine.onCheckpointEstablished(i);
    EXPECT_NE(rig.engine.currentValueSlice(500), nullptr);
}

TEST(AcrEngine, StrictRetentionExpiresOldAssociations)
{
    // The stricter Sec. III-A reading: mappings only for the two most
    // recent checkpoints.
    AcrConfig config;
    config.retentionIntervals = 2;
    EngineRig rig(config);
    rig.produce(1);
    rig.store(500, 1, true);  // interval 1
    rig.engine.onCheckpointEstablished(2);
    rig.engine.onCheckpointEstablished(3);
    EXPECT_NE(rig.engine.currentValueSlice(500), nullptr)
        << "still within two-checkpoint retention";
    rig.engine.onCheckpointEstablished(4);
    EXPECT_EQ(rig.engine.currentValueSlice(500), nullptr)
        << "expired after falling out of the retention window";
}

TEST(AcrEngine, RollbackErasesRestoredAddresses)
{
    EngineRig rig;
    rig.produce(1);
    rig.store(500, 1, true);
    rig.produce(2);
    rig.store(501, 2, true);
    rig.engine.onRollback({500});
    EXPECT_EQ(rig.engine.currentValueSlice(500), nullptr);
    EXPECT_NE(rig.engine.currentValueSlice(501), nullptr);
}

TEST(AcrEngine, NonSliceableInstanceFallsBackToLogging)
{
    EngineRig rig;
    // r1 produced by a load: no Slice exists.
    isa::Instruction load{isa::Opcode::kLoad, 1, 2, 0, 0, false};
    cpu::InstrEvent e;
    e.core = 0;
    e.inst = &load;
    e.result = 9;
    rig.slicer.observe(e);
    rig.store(500, 9, true);
    EXPECT_EQ(rig.engine.currentValueSlice(500), nullptr);
    rig.engine.exportStats();  // flush the deferred hot counters
    EXPECT_DOUBLE_EQ(rig.stats.get("acr.captureFailures"), 1.0);
}

TEST(AcrEngine, ExportStatsPublishesOccupancy)
{
    EngineRig rig;
    rig.produce(1);
    rig.store(500, 1, true);
    rig.engine.exportStats();
    EXPECT_DOUBLE_EQ(rig.stats.get("acr.addrMapPeakEntries"), 1.0);
    EXPECT_DOUBLE_EQ(rig.stats.get("acr.uniqueSlices"), 1.0);
}

// ---------------------------------------------------------------------
// SlicePass
// ---------------------------------------------------------------------

TEST(SlicePass, MarksRecomputableStoresAndMeasuresGrowth)
{
    workloads::KernelSpec spec;
    spec.name = "mini";
    spec.outerIters = 4;
    spec.phases = {{16, 4}, {16, 40}};
    spec.comm = workloads::Comm::kNone;
    workloads::WorkloadParams params;
    params.threads = 2;
    isa::Program program = workloads::buildKernel(spec, params);

    slice::SlicePolicyConfig policy;
    policy.lengthThreshold = 10;
    auto result = SlicePass::run(program,
                                 sim::MachineConfig::tableI(2), policy);

    EXPECT_GT(result.staticStores, 0u);
    EXPECT_GT(result.hintedStores, 0u);
    EXPECT_LT(result.hintedStores, result.staticStores)
        << "the length-40 phase must not be hinted at threshold 10";
    EXPECT_GT(result.uniqueSlices, 0u);
    EXPECT_GT(result.binaryGrowthPct, 0.0);
    EXPECT_GT(result.totalProgress, 0u);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_FALSE(result.finalImage.empty());
    EXPECT_EQ(result.program.sliceHintedStores(), result.hintedStores);
    EXPECT_GT(result.sliceableStores, 0u);
    EXPECT_LT(result.sliceableStores, result.dynamicStores);
}

TEST(SlicePass, HigherThresholdHintsMoreStores)
{
    workloads::KernelSpec spec;
    spec.name = "mini2";
    spec.outerIters = 4;
    spec.phases = {{16, 4}, {16, 20}, {16, 40}};
    spec.comm = workloads::Comm::kNone;
    workloads::WorkloadParams params;
    params.threads = 2;
    isa::Program program = workloads::buildKernel(spec, params);

    std::size_t prev = 0;
    for (unsigned threshold : {10u, 25u, 50u}) {
        slice::SlicePolicyConfig policy;
        policy.lengthThreshold = threshold;
        auto result = SlicePass::run(
            program, sim::MachineConfig::tableI(2), policy);
        EXPECT_GE(result.hintedStores, prev)
            << "coverage must be monotone in the threshold";
        prev = result.hintedStores;
    }
    EXPECT_GT(prev, 0u);
}

} // namespace
} // namespace acr::amnesic
