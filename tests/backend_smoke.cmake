# End-to-end check of the pluggable checkpoint-store backends
# (DESIGN.md §14), run as a ctest and mirrored by the CI backend-smoke
# job. Against the fig_backend bench (-DBENCH=...) and a workload
# subset (-DWORKLOADS=...), it verifies:
#
#   * the backend × workload × error grid runs clean — the recovery
#     oracle is on by default for every checkpointing point and the
#     process exits 0 (a divergence would exit 4);
#   * the BenchMain determinism contract holds across backends: the
#     rendered stdout of --jobs=1, --jobs=8, and a 2-shard --shard +
#     --merge round trip is byte-identical;
#   * the result cache distinguishes backends: a warm re-run of the
#     same backend selection serves 100% hits with zero misses, while
#     the same experiments under a different backend miss (only the
#     backend field of the point encoding differs, so a collision
#     would silently serve one backend's physics as another's).
#
# Invoke with
#   cmake -DBENCH=<path> -DWORKLOADS=<a,b> -DOUT=<scratch dir>
#         -P backend_smoke.cmake

foreach(var BENCH WORKLOADS OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "backend_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(REMOVE_RECURSE "${OUT}")
file(MAKE_DIRECTORY "${OUT}")
set(CACHE_FILE "${OUT}/results.cache")

# Run the bench, requiring exit 0 (oracle divergences exit 4, so this
# doubles as the zero-divergence assertion); extra args pass through.
function(run_case output errfile)
    execute_process(
        COMMAND "${BENCH}" "--workloads=${WORKLOADS}" ${ARGN}
        OUTPUT_FILE "${output}"
        ERROR_FILE "${errfile}"
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        file(READ "${errfile}" stderr)
        message(FATAL_ERROR
                "${BENCH} ${ARGN} exited ${status} (expected 0 — 4 "
                "would be an oracle divergence):\n${stderr}")
    endif()
endfunction()

function(expect_identical reference candidate what)
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${reference}" "${candidate}"
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR
                "${what} output differs from the --jobs=1 reference "
                "(${reference} vs ${candidate})")
    endif()
endfunction()

# Parse "[sweep] N points" and "cache: H hit(s), M miss(es), I
# insert(s)" out of a stderr file into <prefix>_{points,hits,misses,
# inserts} in the caller's scope.
function(read_stats errfile prefix)
    file(READ "${errfile}" content)
    if(NOT content MATCHES "\\[sweep\\] ([0-9]+) points")
        message(FATAL_ERROR "no point count in '${errfile}':\n${content}")
    endif()
    set(${prefix}_points "${CMAKE_MATCH_1}" PARENT_SCOPE)
    if(NOT content MATCHES
       "cache: ([0-9]+) hit\\(s\\), ([0-9]+) miss\\(es\\), ([0-9]+) insert\\(s\\)")
        message(FATAL_ERROR "no cache stats in '${errfile}':\n${content}")
    endif()
    set(${prefix}_hits "${CMAKE_MATCH_1}" PARENT_SCOPE)
    set(${prefix}_misses "${CMAKE_MATCH_2}" PARENT_SCOPE)
    set(${prefix}_inserts "${CMAKE_MATCH_3}" PARENT_SCOPE)
endfunction()

function(expect_stat actual expected what)
    if(NOT actual STREQUAL expected)
        message(FATAL_ERROR "${what}: got ${actual}, want ${expected}")
    endif()
endfunction()

# --- Full backend grid: clean, deterministic across run modes ---
set(GRID --backends=log,replicated,nvm --errors=0,1)

run_case("${OUT}/reference.txt" "${OUT}/reference.err" ${GRID} --jobs=1)

run_case("${OUT}/jobs8.txt" "${OUT}/jobs8.err" ${GRID} --jobs=8)
expect_identical("${OUT}/reference.txt" "${OUT}/jobs8.txt" "--jobs=8")

run_case("${OUT}/shard0.ndjson" "${OUT}/shard0.err" ${GRID}
         --shard=0/2 --jobs=2)
run_case("${OUT}/shard1.ndjson" "${OUT}/shard1.err" ${GRID}
         --shard=1/2 --jobs=2)
run_case("${OUT}/merged.txt" "${OUT}/merged.err" ${GRID}
         "--merge=${OUT}/shard0.ndjson,${OUT}/shard1.ndjson")
expect_identical("${OUT}/reference.txt" "${OUT}/merged.txt"
                 "2-shard --merge")

# --- Cache keys distinguish backends ---
# Cold single-backend run populates the cache ...
run_case("${OUT}/log_cold.txt" "${OUT}/log_cold.err"
         --backends=log --errors=1 --jobs=2 "--cache=${CACHE_FILE}")
read_stats("${OUT}/log_cold.err" cold)
expect_stat("${cold_hits}" 0 "cold log-backend hits")
expect_stat("${cold_misses}" "${cold_points}" "cold log-backend misses")

# ... a warm re-run of the SAME backend is 100% hits ...
run_case("${OUT}/log_warm.txt" "${OUT}/log_warm.err"
         --backends=log --errors=1 --jobs=2 "--cache=${CACHE_FILE}")
expect_identical("${OUT}/log_cold.txt" "${OUT}/log_warm.txt"
                 "warm same-backend")
read_stats("${OUT}/log_warm.err" warm)
expect_stat("${warm_hits}" "${cold_points}" "warm same-backend hits")
expect_stat("${warm_misses}" 0 "warm same-backend misses")

# ... and the same experiments under a DIFFERENT backend miss (only
# the shared NoCkpt baseline — which stores nothing and keeps the
# default backend — may hit).
run_case("${OUT}/nvm.txt" "${OUT}/nvm.err"
         --backends=nvm --errors=1 --jobs=2 "--cache=${CACHE_FILE}")
read_stats("${OUT}/nvm.err" nvm)
if(nvm_misses EQUAL 0)
    message(FATAL_ERROR
            "differing-backend run had zero cache misses: the result "
            "cache is not keying on the backend field")
endif()

message(STATUS
        "backend smoke: grid clean under the oracle, byte-identical "
        "across --jobs/--shard, cache keys distinguish backends")
