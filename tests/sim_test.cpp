/**
 * @file
 * Tests for the multicore system: SPMD execution, barrier rendezvous,
 * epoch-based release after partial rollback, coordination helpers, and
 * determinism of repeated runs.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/system.hh"

namespace acr::sim
{
namespace
{

/** Each thread stores tid at 1000 + tid, with a barrier in between. */
isa::Program
spmdProgram()
{
    isa::ProgramBuilder b("spmd");
    b.tid(1);
    b.movi(2, 1000);
    b.add(2, 2, 1);
    b.store(2, 1);
    b.barrier();
    // After the barrier, read the neighbour's slot.
    b.tid(1);
    b.addi(3, 1, 1);
    b.movi(4, 1000);
    b.add(4, 4, 3);
    b.load(5, 4);
    b.movi(6, 2000);
    b.add(6, 6, 1);
    b.store(6, 5);
    b.halt();
    return b.build();
}

TEST(System, SpmdRunsAllCores)
{
    auto program = spmdProgram();
    MulticoreSystem sys(MachineConfig::tableI(4), program);
    sys.runToCompletion();
    EXPECT_TRUE(sys.allHalted());
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(sys.memory().read(1000 + c), c);
    // Neighbour reads saw post-barrier values (core 2's slot was
    // written before core 3 read... all writes precede the barrier).
    EXPECT_EQ(sys.memory().read(2000), 1u);
    EXPECT_EQ(sys.memory().read(2001), 2u);
    EXPECT_EQ(sys.memory().read(2002), 3u);
}

TEST(System, BarrierAlignsClocks)
{
    // Thread 0 does extra work before the barrier; all cores resume at
    // the same cycle.
    isa::ProgramBuilder b("skew");
    b.tid(1);
    b.movi(2, 0);
    b.bne(1, 0, "skip");
    b.movi(3, 2000);
    b.label("spin");
    b.addi(2, 2, 1);
    b.bltu(2, 3, "spin");
    b.label("skip");
    b.barrier();
    b.halt();
    MulticoreSystem sys(MachineConfig::tableI(2), b.build());
    sys.runToCompletion();
    EXPECT_EQ(sys.core(0).cycle(), sys.core(1).cycle());
}

TEST(System, ProgressSumsRetiredInstructions)
{
    auto program = spmdProgram();
    MulticoreSystem sys(MachineConfig::tableI(2), program);
    EXPECT_EQ(sys.progress(), 0u);
    sys.runToCompletion();
    EXPECT_EQ(sys.progress(), sys.core(0).instrsRetired() +
                                  sys.core(1).instrsRetired());
}

TEST(System, DeterministicAcrossIdenticalRuns)
{
    auto program = spmdProgram();
    MulticoreSystem a(MachineConfig::tableI(4), program);
    MulticoreSystem b(MachineConfig::tableI(4), program);
    a.runToCompletion();
    b.runToCompletion();
    EXPECT_EQ(a.maxCycle(), b.maxCycle());
    EXPECT_EQ(a.progress(), b.progress());
    EXPECT_EQ(a.memory().firstDifference(b.memory()), kInvalidAddr);
}

TEST(System, SyncCoresAlignsToMaxPlusLatency)
{
    auto program = spmdProgram();
    MachineConfig config = MachineConfig::tableI(4);
    MulticoreSystem sys(config, program);
    sys.step();
    Cycle max_before = sys.maxCycleOf(0b0011);
    Cycle aligned = sys.syncCores(0b0011, 7);
    EXPECT_EQ(aligned, max_before + config.syncLatency(2) + 7);
    EXPECT_EQ(sys.core(0).cycle(), aligned);
    EXPECT_EQ(sys.core(1).cycle(), aligned);
}

TEST(System, SyncLatencyGrowsLogarithmically)
{
    MachineConfig config;
    EXPECT_EQ(config.syncLatency(1), 0u);
    EXPECT_EQ(config.syncLatency(2), config.syncBaseCycles);
    EXPECT_EQ(config.syncLatency(8), 3 * config.syncBaseCycles);
    EXPECT_EQ(config.syncLatency(32), 5 * config.syncBaseCycles);
}

TEST(System, EpochReleaseLetsRolledBackCohortPass)
{
    // Program: barrier, then halt. Run to completion, then roll core 0
    // back before the barrier; it must pass the barrier alone.
    isa::ProgramBuilder b("epoch");
    b.tid(1);
    b.barrier();
    b.movi(2, 3000);
    b.add(2, 2, 1);
    b.store(2, 1);
    b.halt();
    MulticoreSystem sys(MachineConfig::tableI(2), b.build());

    cpu::ArchState initial = sys.core(0).saveArch();
    sys.runToCompletion();
    EXPECT_EQ(sys.core(0).barrierEpoch(), 1u);

    sys.memory().write(3000, 999);
    sys.core(0).restoreArch(initial);
    EXPECT_EQ(sys.core(0).barrierEpoch(), 0u);
    sys.runToCompletion();
    EXPECT_EQ(sys.memory().read(3000), 0u)
        << "core 0 re-ran past the barrier and re-stored its value";
}

TEST(SystemDeathTest, BarrierCountMismatchIsFatal)
{
    // Thread 0 hits a barrier thread 1 never reaches.
    isa::ProgramBuilder b("mismatch");
    b.tid(1);
    b.bne(1, 0, "end");
    b.barrier();
    b.label("end");
    b.halt();
    auto program = b.build();
    EXPECT_EXIT(
        {
            MulticoreSystem sys(MachineConfig::tableI(2), program);
            sys.runToCompletion();
        },
        testing::ExitedWithCode(1), "barrier deadlock");
}

TEST(System, ExportStatsCoversCoresAndCaches)
{
    auto program = spmdProgram();
    MulticoreSystem sys(MachineConfig::tableI(2), program);
    sys.runToCompletion();
    StatSet stats;
    sys.exportStats(stats);
    EXPECT_GT(stats.get("cores.instrs"), 0.0);
    EXPECT_GT(stats.get("cores.stores"), 0.0);
    EXPECT_GT(stats.get("l1i.fetches"), 0.0);
    EXPECT_GT(stats.get("sim.maxCycle"), 0.0);
}

TEST(System, DataSegmentLoadedBeforeExecution)
{
    isa::ProgramBuilder b("data");
    b.data(4000, 1234);
    b.movi(1, 4000);
    b.load(2, 1);
    b.store(1, 2, 1);
    b.halt();
    MulticoreSystem sys(MachineConfig::tableI(1), b.build());
    sys.runToCompletion();
    EXPECT_EQ(sys.memory().read(4001), 1234u);
}

} // namespace
} // namespace acr::sim
