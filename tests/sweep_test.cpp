/**
 * @file
 * Sweep determinism lock: fanning a sweep out across worker threads
 * must be observationally invisible. An 8-workload × {NoCkpt, Ckpt,
 * ReCkpt} grid run with jobs=1 and jobs=8 from the same seed must
 * produce bit-identical ExperimentResults — every scalar field, every
 * StatSet entry, every per-interval history record. Two independent
 * Runners are used so even the cache-fill work (program builds, slice
 * passes) happens under different schedules.
 */

#include <gtest/gtest.h>

#include <set>

#include "harness/sweep.hh"

namespace acr::harness
{
namespace
{

std::vector<SweepPoint>
grid()
{
    std::vector<SweepPoint> points;
    for (const auto &name : workloads::allWorkloadNames()) {
        for (auto mode :
             {BerMode::kNoCkpt, BerMode::kCkpt, BerMode::kReCkpt}) {
            ExperimentConfig config;
            config.mode = mode;
            config.numCheckpoints = 15;
            config.numErrors = mode == BerMode::kNoCkpt ? 0 : 1;
            config.sliceThreshold = 0;  // per-workload default
            points.push_back({name, config});
        }
    }
    return points;
}

void
expectBitIdentical(const ExperimentResult &serial,
                   const ExperimentResult &parallel,
                   const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(serial.cycles, parallel.cycles);
    EXPECT_EQ(serial.energyPj, parallel.energyPj);  // exact, not near
    EXPECT_EQ(serial.edp, parallel.edp);
    EXPECT_EQ(serial.checkpointsEstablished,
              parallel.checkpointsEstablished);
    EXPECT_EQ(serial.recoveries, parallel.recoveries);
    EXPECT_EQ(serial.ckptBytesStored, parallel.ckptBytesStored);
    EXPECT_EQ(serial.ckptBytesOmitted, parallel.ckptBytesOmitted);

    // Every StatSet entry: same names, same exact values.
    EXPECT_EQ(serial.stats.size(), parallel.stats.size());
    for (const auto &[name, value] : serial.stats.all()) {
        EXPECT_TRUE(parallel.stats.has(name)) << name;
        EXPECT_EQ(value, parallel.stats.get(name)) << name;
    }

    ASSERT_EQ(serial.history.size(), parallel.history.size());
    for (std::size_t i = 0; i < serial.history.size(); ++i) {
        const auto &s = serial.history[i];
        const auto &p = parallel.history[i];
        EXPECT_EQ(s.interval, p.interval);
        EXPECT_EQ(s.records, p.records);
        EXPECT_EQ(s.amnesicRecords, p.amnesicRecords);
        EXPECT_EQ(s.loggedBytes, p.loggedBytes);
        EXPECT_EQ(s.omittedBytes, p.omittedBytes);
        EXPECT_EQ(s.flushedLines, p.flushedLines);
        EXPECT_EQ(s.archBytes, p.archBytes);
    }
}

TEST(SweepDeterminism, Jobs8MatchesJobs1BitForBit)
{
    const auto points = grid();

    Runner serial_runner(4);
    Sweep serial_sweep(serial_runner, 1);
    auto serial = serial_sweep.run(points);

    Runner parallel_runner(4);
    Sweep parallel_sweep(parallel_runner, 8);
    auto parallel = parallel_sweep.run(points);

    ASSERT_EQ(serial.size(), points.size());
    ASSERT_EQ(parallel.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        expectBitIdentical(serial[i], parallel[i],
                           points[i].workload + "/" +
                               points[i].config.label());
    }
}

TEST(SweepDeterminism, ResultsComeBackInSubmissionOrder)
{
    // Distinguishable points (different checkpoint counts for one
    // workload): slot i must hold point i's result even when workers
    // finish out of order.
    Runner runner(2);
    std::vector<SweepPoint> points;
    for (unsigned checkpoints : {5u, 10u, 15u, 20u}) {
        ExperimentConfig config;
        config.mode = BerMode::kCkpt;
        config.numCheckpoints = checkpoints;
        config.sliceThreshold = 0;
        points.push_back({"is", config});
    }
    Sweep serial_sweep(runner, 1);
    auto serial = serial_sweep.run(points);
    std::set<std::uint64_t> distinct;
    for (const auto &result : serial)
        distinct.insert(result.checkpointsEstablished);
    ASSERT_EQ(distinct.size(), points.size())
        << "points must be distinguishable for the order check";

    Sweep sweep(runner, 8);
    auto results = sweep.run(points);
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(results[i].checkpointsEstablished,
                  serial[i].checkpointsEstablished)
            << "slot " << i;
    }
}

TEST(SweepDeterminism, HostTimingStaysOutOfResults)
{
    // Wall-clock depends on scheduling, so it must never leak into
    // ExperimentResult.stats — it lives in Sweep::hostStats() only.
    Runner runner(2);
    std::vector<SweepPoint> points;
    ExperimentConfig config;
    config.mode = BerMode::kCkpt;
    config.numCheckpoints = 5;
    config.sliceThreshold = 0;
    points.push_back({"is", config});

    Sweep sweep(runner, 2);
    auto results = sweep.run(points);
    ASSERT_EQ(results.size(), 1u);
    for (const auto &[name, value] : results[0].stats.all())
        EXPECT_EQ(name.rfind("sweep.", 0), std::string::npos) << name;

    EXPECT_EQ(sweep.hostStats().get("sweep.points"), 1.0);
    EXPECT_EQ(sweep.hostStats().get("sweep.jobs"), 2.0);
    EXPECT_GT(sweep.hostStats().get("sweep.wallMillis"), 0.0);
    EXPECT_TRUE(sweep.hostStats().has("sweep.point.000.millis"));
}

TEST(SweepDeterminism, EmptySweepAndDefaultJobs)
{
    Runner runner(2);
    Sweep sweep(runner, 3);
    EXPECT_EQ(sweep.jobs(), 3u);
    EXPECT_TRUE(sweep.run({}).empty());
    EXPECT_GE(Sweep::defaultJobs(), 1u);
}

} // namespace
} // namespace acr::harness
