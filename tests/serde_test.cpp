/**
 * @file
 * acr::serde unit tests: canonical encoding (insertion order, shortest
 * round-trip numbers, no whitespace), strict parsing (trailing garbage,
 * duplicate keys, bad escapes all throw), the number-kind taxonomy that
 * keeps 64-bit integers exact, and ObjectReader's unknown-key
 * rejection — the substrate of the wire-format guarantees.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/serde.hh"

namespace
{

using acr::serde::Json;
using acr::serde::ObjectReader;
using acr::serde::SerdeError;
using acr::serde::formatDouble;

TEST(SerdeFormatDouble, ShortestRoundTrip)
{
    EXPECT_EQ(formatDouble(0.0), "0");
    EXPECT_EQ(formatDouble(-0.0), "0");
    EXPECT_EQ(formatDouble(1.0), "1");
    EXPECT_EQ(formatDouble(0.1), "0.1");
    EXPECT_EQ(formatDouble(-2.5), "-2.5");
    // 2^53: still exactly representable.
    EXPECT_EQ(formatDouble(9007199254740992.0), "9007199254740992");
    EXPECT_THROW(formatDouble(std::numeric_limits<double>::infinity()),
                 SerdeError);
    EXPECT_THROW(formatDouble(std::numeric_limits<double>::quiet_NaN()),
                 SerdeError);
}

TEST(SerdeJson, ScalarDump)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(std::uint64_t{0}).dump(), "0");
    EXPECT_EQ(Json(std::numeric_limits<std::uint64_t>::max()).dump(),
              "18446744073709551615");
    EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42");
    EXPECT_EQ(Json(std::numeric_limits<std::int64_t>::min()).dump(),
              "-9223372036854775808");
    EXPECT_EQ(Json(2.5).dump(), "2.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(SerdeJson, StringEscapes)
{
    EXPECT_EQ(Json("a\"b\\c\n\t\x01").dump(),
              "\"a\\\"b\\\\c\\n\\t\\u0001\"");
    Json parsed = Json::parse("\"a\\u0041\\n\"");
    EXPECT_EQ(parsed.asString(), "aA\n");
}

TEST(SerdeJson, ObjectKeepsInsertionOrder)
{
    Json object = Json::object();
    object.set("zebra", 1).set("apple", 2).set("mango", 3);
    EXPECT_EQ(object.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(SerdeJson, ArrayAndNesting)
{
    Json array = Json::array();
    array.push(1).push("two").push(Json::object().set("k", 3.5));
    EXPECT_EQ(array.dump(), "[1,\"two\",{\"k\":3.5}]");
}

TEST(SerdeJson, ParseDumpStability)
{
    const std::string text =
        "{\"b\":true,\"n\":null,\"u\":18446744073709551615,"
        "\"i\":-7,\"d\":0.25,\"s\":\"x\",\"a\":[1,2,3],\"o\":{}}";
    Json parsed = Json::parse(text);
    EXPECT_EQ(parsed.dump(), text);
    // encode(decode(encode(x))) == encode(x).
    EXPECT_EQ(Json::parse(parsed.dump()).dump(), text);
}

TEST(SerdeJson, NumberKinds)
{
    EXPECT_EQ(Json::parse("25").kind(), Json::Kind::kUint);
    EXPECT_EQ(Json::parse("-25").kind(), Json::Kind::kInt);
    EXPECT_EQ(Json::parse("25.0").kind(), Json::Kind::kDouble);
    EXPECT_EQ(Json::parse("2e1").kind(), Json::Kind::kDouble);

    // asDouble widens any number; asUint stays exact and strict.
    EXPECT_EQ(Json::parse("25").asDouble(), 25.0);
    EXPECT_EQ(Json::parse("18446744073709551615").asUint(),
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_THROW(Json::parse("-1").asUint(), SerdeError);
    EXPECT_THROW(Json::parse("2.5").asUint(), SerdeError);
    EXPECT_THROW(Json::parse("\"1\"").asUint(), SerdeError);
}

TEST(SerdeJson, ParseRejectsMalformedInput)
{
    EXPECT_THROW(Json::parse(""), SerdeError);
    EXPECT_THROW(Json::parse("{"), SerdeError);
    EXPECT_THROW(Json::parse("[1,]"), SerdeError);
    EXPECT_THROW(Json::parse("{\"a\":1,}"), SerdeError);
    EXPECT_THROW(Json::parse("{'a':1}"), SerdeError);
    EXPECT_THROW(Json::parse("nul"), SerdeError);
    EXPECT_THROW(Json::parse("\"\\q\""), SerdeError);
    EXPECT_THROW(Json::parse("1 2"), SerdeError);    // trailing garbage
    EXPECT_THROW(Json::parse("{} x"), SerdeError);
    EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), SerdeError);
}

TEST(SerdeJson, AccessorKindMismatchThrows)
{
    EXPECT_THROW(Json(1.5).asString(), SerdeError);
    EXPECT_THROW(Json("x").asBool(), SerdeError);
    EXPECT_THROW(Json(true).asDouble(), SerdeError);
    EXPECT_THROW(Json().items(), SerdeError);
    EXPECT_THROW(Json().members(), SerdeError);
}

TEST(SerdeObjectReader, ConsumesAndFinishes)
{
    Json object = Json::parse("{\"a\":1,\"b\":\"x\",\"c\":true}");
    ObjectReader reader(object, "test");
    EXPECT_EQ(reader.requireUint("a"), 1u);
    EXPECT_EQ(reader.requireString("b"), "x");
    EXPECT_TRUE(reader.requireBool("c"));
    EXPECT_NO_THROW(reader.finish());
}

TEST(SerdeObjectReader, UnknownKeyRejected)
{
    Json object = Json::parse("{\"a\":1,\"surprise\":2}");
    ObjectReader reader(object, "test");
    reader.requireUint("a");
    try {
        reader.finish();
        FAIL() << "finish() accepted an unknown key";
    } catch (const SerdeError &error) {
        EXPECT_NE(std::string(error.what()).find("surprise"),
                  std::string::npos);
    }
}

TEST(SerdeObjectReader, MissingKeyAndOptional)
{
    Json object = Json::parse("{\"a\":1}");
    ObjectReader reader(object, "test");
    EXPECT_EQ(reader.optional("absent"), nullptr);
    EXPECT_THROW(reader.require("also-absent"), SerdeError);
    reader.requireUint("a");
    EXPECT_NO_THROW(reader.finish());
}

} // namespace
