/**
 * @file
 * Differential golden lock for the hot-path rewrite (ISSUE 6): the
 * optimized engine must reproduce the recorded seed engine's results
 * byte-for-byte on every workload × mode × coordination cell of the
 * tier-1 grid, errors on and off, plus the functional final state of
 * the slice-pass profile. Unlike golden_test.cpp (reduction arithmetic
 * with a float tolerance), this lock renders every measured quantity
 * into a canonical text grid — integers verbatim, doubles through
 * serde::formatDouble's shortest-round-trip form — and compares the
 * whole document against tests/golden/equiv_grid.txt. Any byte of
 * drift fails, so an SoA/devirtualization refactor cannot silently
 * change results.
 *
 * Regenerate (only for a CONSCIOUS model change, explained in the
 * commit) with:
 *   ACR_UPDATE_GOLDEN=1 ./tests/acr_tests \
 *       --gtest_filter=PerfEquiv.TierOneGridMatchesSeedEngine
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/serde.hh"

namespace acr::bench
{
namespace
{

using harness::BerMode;

constexpr const char *kGoldenPath = ACR_GOLDEN_DIR "/equiv_grid.txt";

/** FNV-1a over (addr, word) pairs in address order. */
std::uint64_t
imageHash(const std::map<Addr, Word> &image)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (8 * byte)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const auto &[addr, word] : image) {
        mix(addr);
        mix(word);
    }
    return h;
}

const char *
modeName(BerMode mode)
{
    switch (mode) {
    case BerMode::kNoCkpt: return "NoCkpt";
    case BerMode::kCkpt: return "Ckpt";
    case BerMode::kReCkpt: return "ReCkpt";
    }
    return "?";
}

/** Render the whole tier-1 grid into the canonical lock document. */
std::string
renderGrid()
{
    harness::Runner runner(kDefaultThreads);

    // Every workload × mode × coord cell: NoCkpt once per workload,
    // then {Ckpt, ReCkpt} × {global, local} × {0, 1 errors}.
    std::vector<harness::ExperimentConfig> configs;
    configs.push_back(makeConfig(BerMode::kNoCkpt));
    for (auto mode : {BerMode::kCkpt, BerMode::kReCkpt})
        for (auto coord :
             {ckpt::Coordination::kGlobal, ckpt::Coordination::kLocal})
            for (unsigned errors : {0u, 1u})
                configs.push_back(makeConfig(mode, errors, coord));

    harness::Sweep sweep(runner);
    const auto results = sweep.run(crossWorkloads(configs));

    std::ostringstream out;
    out << "# perf-equiv golden: seed-engine results on the tier-1 "
           "grid (8 threads, 25 checkpoints, default thresholds)\n";
    const auto &names = workloads::allWorkloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        const auto &profile = runner.profile(names[w]);
        out << "image workload=" << names[w]
            << " words=" << profile.finalImage.size()
            << " hash=" << std::hex << imageHash(profile.finalImage)
            << std::dec << " progress=" << profile.totalProgress
            << " passCycles=" << profile.cycles << "\n";
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const auto &config = configs[c];
            const auto &r = results[w * configs.size() + c];
            out << "cell workload=" << names[w]
                << " mode=" << modeName(config.mode) << " coord="
                << (config.coordination == ckpt::Coordination::kGlobal
                        ? "global"
                        : "local")
                << " errors=" << config.numErrors
                << " cycles=" << r.cycles
                << " energyPj=" << serde::formatDouble(r.energyPj)
                << " edp=" << serde::formatDouble(r.edp)
                << " ckpts=" << r.checkpointsEstablished
                << " recoveries=" << r.recoveries
                << " bytesStored=" << r.ckptBytesStored
                << " bytesOmitted=" << r.ckptBytesOmitted << "\n";
        }
    }
    return out.str();
}

TEST(PerfEquiv, TierOneGridMatchesSeedEngine)
{
    const std::string actual = renderGrid();

    if (std::getenv("ACR_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
        out << actual;
        GTEST_LOG_(INFO) << "regenerated " << kGoldenPath;
        return;
    }

    std::ifstream in(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << kGoldenPath
        << " (regenerate with ACR_UPDATE_GOLDEN=1)";
    std::ostringstream expected;
    expected << in.rdbuf();

    if (actual == expected.str())
        return;

    // Find the first differing line for a readable failure.
    std::istringstream a(actual), e(expected.str());
    std::string aline, eline;
    std::size_t lineno = 0;
    while (true) {
        ++lineno;
        const bool agot = static_cast<bool>(std::getline(a, aline));
        const bool egot = static_cast<bool>(std::getline(e, eline));
        if (!agot && !egot)
            break;
        if (aline != eline || agot != egot) {
            FAIL() << "engine output diverged from the recorded seed "
                      "engine at line "
                   << lineno << ":\n  golden: "
                   << (egot ? eline : "<end of file>")
                   << "\n  actual: " << (agot ? aline : "<end of file>");
        }
    }
    FAIL() << "golden mismatch (line endings or trailing bytes)";
}

} // namespace
} // namespace acr::bench
