/**
 * @file
 * Exit-code precedence (harness/exit_code.hh): the single combiner the
 * bench front-ends use must order verdicts clean < quarantine <
 * divergence < unrecoverable regardless of argument order, be
 * associative (so folding
 * over any number of verdicts is well-defined), and reject codes that
 * are not combinable verdicts.
 */

#include <gtest/gtest.h>

#include "harness/exit_code.hh"

namespace acr::harness
{
namespace
{

TEST(ExitCode, EveryPairCombinesToTheMoreSevere)
{
    const int codes[] = {kExitClean, kExitQuarantine, kExitDivergence,
                         kExitUnrecoverable};
    for (int a : codes) {
        for (int b : codes) {
            const int combined = combineExitCodes(a, b);
            const int expected =
                exitCodeSeverity(a) >= exitCodeSeverity(b) ? a : b;
            EXPECT_EQ(combined, expected)
                << "combine(" << a << ", " << b << ")";
            EXPECT_EQ(combined, combineExitCodes(b, a))
                << "combine must be symmetric for (" << a << ", " << b
                << ")";
        }
    }
}

TEST(ExitCode, PrecedenceChain)
{
    EXPECT_EQ(combineExitCodes(kExitClean, kExitClean), kExitClean);
    EXPECT_EQ(combineExitCodes(kExitClean, kExitQuarantine),
              kExitQuarantine);
    EXPECT_EQ(combineExitCodes(kExitClean, kExitDivergence),
              kExitDivergence);
    EXPECT_EQ(combineExitCodes(kExitQuarantine, kExitDivergence),
              kExitDivergence);
    EXPECT_EQ(combineExitCodes(kExitClean, kExitUnrecoverable),
              kExitUnrecoverable);
    EXPECT_EQ(combineExitCodes(kExitQuarantine, kExitUnrecoverable),
              kExitUnrecoverable);
    EXPECT_EQ(combineExitCodes(kExitDivergence, kExitUnrecoverable),
              kExitUnrecoverable);
}

TEST(ExitCode, AssociativeOverFolds)
{
    const int codes[] = {kExitClean, kExitQuarantine, kExitDivergence,
                         kExitUnrecoverable};
    for (int a : codes)
        for (int b : codes)
            for (int c : codes)
                EXPECT_EQ(
                    combineExitCodes(combineExitCodes(a, b), c),
                    combineExitCodes(a, combineExitCodes(b, c)));
}

TEST(ExitCode, SeverityRejectsNonVerdicts)
{
    EXPECT_EQ(exitCodeSeverity(1), -1);  // fatal(): never combined
    EXPECT_EQ(exitCodeSeverity(2), -1);  // reserved
    EXPECT_EQ(exitCodeSeverity(-1), -1);
    EXPECT_EQ(exitCodeSeverity(255), -1);
}

TEST(ExitCodeDeath, CombineRefusesNonVerdicts)
{
    EXPECT_DEATH(combineExitCodes(1, kExitClean),
                 "not a combinable verdict");
    EXPECT_DEATH(combineExitCodes(kExitClean, 2),
                 "not a combinable verdict");
}

} // namespace
} // namespace acr::harness
