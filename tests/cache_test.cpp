/**
 * @file
 * Unit and property tests for the set-associative cache and the
 * directory. The cache property test runs random traffic against a
 * reference model tracking residency and dirtiness.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/cache.hh"
#include "cache/directory.hh"
#include "common/rng.hh"

namespace acr::cache
{
namespace
{

CacheConfig
tinyCache(unsigned ways = 2, std::size_t lines = 8)
{
    CacheConfig config;
    config.name = "tiny";
    config.ways = ways;
    config.sizeBytes = lines * kLineBytes;
    config.latency = 1;
    return config;
}

TEST(Cache, GeometryDerivation)
{
    CacheConfig config;
    config.sizeBytes = 32 * 1024;
    config.ways = 8;
    EXPECT_EQ(config.lines(), 512u);
    EXPECT_EQ(config.sets(), 64u);
}

TEST(Cache, MissThenHit)
{
    Cache cache(tinyCache());
    EXPECT_FALSE(cache.access(5, false).hit);
    EXPECT_TRUE(cache.access(5, false).hit);
    EXPECT_EQ(cache.counters().hits, 1u);
    EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(Cache, WriteSetsDirtyReadDoesNot)
{
    Cache cache(tinyCache());
    cache.access(1, false);
    EXPECT_FALSE(cache.isDirty(1));
    cache.access(1, true);
    EXPECT_TRUE(cache.isDirty(1));
}

TEST(Cache, AccessReportsPriorDirtyState)
{
    Cache cache(tinyCache());
    cache.access(1, true);
    auto r = cache.access(1, true);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.wasDirty);
    auto r2 = cache.access(2, false);
    cache.access(2, true);
    r2 = cache.access(2, true);
    EXPECT_TRUE(r2.wasDirty);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way, 4 sets: lines 0, 4, 8 collide in set 0.
    Cache cache(tinyCache(2, 8));
    cache.access(0, false);
    cache.access(4, false);
    cache.access(0, false);  // 0 now MRU
    auto r = cache.access(8, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(4)) << "LRU way (4) must be evicted";
}

TEST(Cache, DirtyEvictionReportsVictim)
{
    Cache cache(tinyCache(2, 8));
    cache.access(0, true);
    cache.access(4, false);
    auto r = cache.access(8, false);
    ASSERT_TRUE(r.hasDirtyVictim);
    EXPECT_EQ(r.dirtyVictim, 0u);
    EXPECT_EQ(cache.counters().dirtyEvictions, 1u);
}

TEST(Cache, CleanKeepsResidencyDropsDirty)
{
    Cache cache(tinyCache());
    cache.access(3, true);
    EXPECT_TRUE(cache.clean(3));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_FALSE(cache.isDirty(3));
    EXPECT_FALSE(cache.clean(3)) << "already clean";
    EXPECT_FALSE(cache.clean(99)) << "not resident";
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache cache(tinyCache());
    cache.access(3, true);
    EXPECT_TRUE(cache.invalidate(3));
    EXPECT_FALSE(cache.contains(3));
    EXPECT_FALSE(cache.invalidate(3));
}

TEST(Cache, DirtyLinesSortedAndCounted)
{
    Cache cache(tinyCache(2, 8));
    cache.access(6, true);
    cache.access(1, true);
    cache.access(2, false);
    auto dirty = cache.dirtyLines();
    ASSERT_EQ(dirty.size(), 2u);
    EXPECT_EQ(dirty[0], 1u);
    EXPECT_EQ(dirty[1], 6u);
    EXPECT_EQ(cache.dirtyCount(), 2u);
    cache.invalidateAll();
    EXPECT_EQ(cache.dirtyCount(), 0u);
}

/** Random traffic against a reference model of residency/dirtiness. */
TEST(CacheProperty, MatchesReferenceModelUnderRandomTraffic)
{
    Cache cache(tinyCache(4, 32));  // 8 sets x 4 ways
    // Reference: per set, the resident lines and their dirty bits.
    std::map<LineId, bool> resident;
    Rng rng(77);

    for (int i = 0; i < 50000; ++i) {
        LineId line = rng.below(64);
        bool write = rng.chance(0.4);
        bool was_resident = resident.count(line) != 0;

        auto r = cache.access(line, write);
        EXPECT_EQ(r.hit, was_resident);
        if (r.hasDirtyVictim) {
            ASSERT_TRUE(resident.count(r.dirtyVictim));
            EXPECT_TRUE(resident.at(r.dirtyVictim));
            resident.erase(r.dirtyVictim);
        } else if (!was_resident) {
            // A clean victim may have been evicted silently; sync by
            // removing whatever left the set.
            std::set<LineId> gone;
            for (const auto &[l, d] : resident) {
                if (!cache.contains(l))
                    gone.insert(l);
            }
            for (LineId l : gone) {
                EXPECT_FALSE(resident.at(l))
                    << "dirty line " << l << " vanished unreported";
                resident.erase(l);
            }
        }
        resident[line] = (was_resident && resident[line]) || write;
        EXPECT_EQ(cache.isDirty(line), resident[line]);
    }

    // Final dirty set must agree exactly.
    std::size_t dirty_ref = 0;
    for (const auto &[l, d] : resident)
        if (d)
            ++dirty_ref;
    EXPECT_EQ(cache.dirtyCount(), dirty_ref);
}

TEST(Directory, ReadersBecomeSharers)
{
    Directory dir(4);
    EXPECT_EQ(dir.onRead(0, 10), kInvalidCore);
    EXPECT_EQ(dir.onRead(1, 10), kInvalidCore);
    EXPECT_EQ(dir.sharers(10), 0b11u);
    EXPECT_EQ(dir.owner(10), kInvalidCore);
}

TEST(Directory, WriteTakesOwnershipAndReportsInvalidations)
{
    Directory dir(4);
    dir.onRead(0, 10);
    dir.onRead(1, 10);
    SharerMask inv = dir.onWrite(2, 10);
    EXPECT_EQ(inv, 0b011u);
    EXPECT_EQ(dir.owner(10), 2u);
    EXPECT_EQ(dir.sharers(10), 0b100u);
}

TEST(Directory, OwnWriteUpgradesSilently)
{
    Directory dir(4);
    dir.onRead(0, 10);
    EXPECT_EQ(dir.onWrite(0, 10), 0u);
}

TEST(Directory, ReadFromDirtyOwnerForwards)
{
    Directory dir(4);
    dir.onWrite(3, 10);
    EXPECT_EQ(dir.onRead(1, 10), 3u);
    EXPECT_EQ(dir.owner(10), kInvalidCore) << "owner downgraded";
}

TEST(Directory, InteractionsTrackCommunication)
{
    Directory dir(4);
    dir.onWrite(0, 10);
    dir.onRead(1, 10);  // 1 reads 0's data
    EXPECT_TRUE(dir.interactions(0) & (SharerMask{1} << 1));
    EXPECT_TRUE(dir.interactions(1) & (SharerMask{1} << 0));
    EXPECT_FALSE(dir.interactions(2) & ~(SharerMask{1} << 2));
}

TEST(Directory, CommunicationGroupsAreConnectedComponents)
{
    Directory dir(6);
    dir.onWrite(0, 1);
    dir.onRead(1, 1);  // 0-1
    dir.onWrite(2, 2);
    dir.onRead(3, 2);  // 2-3
    auto groups = dir.communicationGroups();
    // {0,1}, {2,3}, {4}, {5}
    EXPECT_EQ(groups.size(), 4u);
    std::set<SharerMask> set(groups.begin(), groups.end());
    EXPECT_TRUE(set.count(0b000011));
    EXPECT_TRUE(set.count(0b001100));
    EXPECT_TRUE(set.count(0b010000));
    EXPECT_TRUE(set.count(0b100000));
}

TEST(Directory, TransitiveClosureMergesGroups)
{
    Directory dir(4);
    dir.onWrite(0, 1);
    dir.onRead(1, 1);
    dir.onWrite(1, 2);
    dir.onRead(2, 2);
    auto groups = dir.communicationGroups();
    EXPECT_EQ(groups.size(), 2u);  // {0,1,2}, {3}
    std::set<SharerMask> set(groups.begin(), groups.end());
    EXPECT_TRUE(set.count(0b0111));
}

TEST(Directory, ClearInteractionsResetsGroups)
{
    Directory dir(4);
    dir.onWrite(0, 1);
    dir.onRead(1, 1);
    dir.clearInteractions();
    EXPECT_EQ(dir.communicationGroups().size(), 4u);
}

TEST(Directory, EvictionRemovesSharerAndOwner)
{
    Directory dir(4);
    dir.onWrite(0, 10);
    dir.onEviction(0, 10);
    EXPECT_EQ(dir.sharers(10), 0u);
    EXPECT_EQ(dir.owner(10), kInvalidCore);
}

TEST(Directory, DropCoresScrubsState)
{
    Directory dir(4);
    dir.onWrite(0, 10);
    dir.onRead(1, 10);
    dir.dropCores(0b0011);
    EXPECT_EQ(dir.sharers(10), 0u);
    EXPECT_EQ(dir.owner(10), kInvalidCore);
}

TEST(Directory, GroupsOfEveryCoreAppearsOnce)
{
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        unsigned n = 1 + rng.below(16);
        std::vector<SharerMask> adj(n);
        for (unsigned c = 0; c < n; ++c) {
            adj[c] = SharerMask{1} << c;
            if (rng.chance(0.3)) {
                unsigned d = rng.below(n);
                adj[c] |= SharerMask{1} << d;
            }
        }
        auto groups = Directory::groupsOf(adj);
        SharerMask all = 0;
        for (auto g : groups) {
            EXPECT_EQ(all & g, 0u) << "groups must be disjoint";
            all |= g;
        }
        EXPECT_EQ(all, (n >= 64 ? ~SharerMask{0}
                                : (SharerMask{1} << n) - 1));
    }
}

} // namespace
} // namespace acr::cache
