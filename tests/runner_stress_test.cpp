/**
 * @file
 * Concurrency stress over one shared Runner: 16 threads hammering the
 * caches with the same and with different (workload, threshold, policy)
 * keys. Asserts the exactly-once contract — each program build, slice
 * pass, and NoCkpt baseline computes once no matter how many threads
 * race for it — and that the returned references are stable: the same
 * key always yields the same address, and values published early stay
 * intact while later insertions grow the caches.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "harness/sweep.hh"

namespace acr::harness
{
namespace
{

constexpr unsigned kThreads = 16;

/** Spin barrier: maximizes the simultaneity of the cache race. */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties) : remaining_(parties) {}

    void
    arriveAndWait()
    {
        remaining_.fetch_sub(1, std::memory_order_acq_rel);
        while (remaining_.load(std::memory_order_acquire) > 0)
            std::this_thread::yield();  // oversubscribed hosts, TSan
    }

  private:
    std::atomic<unsigned> remaining_;
};

template <typename Fn>
void
runThreads(unsigned count, Fn &&fn)
{
    std::vector<std::thread> pool;
    pool.reserve(count);
    for (unsigned t = 0; t < count; ++t)
        pool.emplace_back([&fn, t] { fn(t); });
    for (auto &thread : pool)
        thread.join();
}

TEST(RunnerStress, SameKeyComputesOnceAndAllSeeOneValue)
{
    Runner runner(2);
    SpinBarrier barrier(kThreads);
    std::vector<const amnesic::SlicePassResult *> seen(kThreads);

    runThreads(kThreads, [&](unsigned t) {
        barrier.arriveAndWait();
        seen[t] = &runner.profileAt("is", 7);
    });

    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[0], seen[t]) << "thread " << t;
    EXPECT_EQ(runner.slicePassRuns(), 1u);
    EXPECT_EQ(runner.programBuilds(), 1u);  // base program raced too
    EXPECT_GT(seen[0]->totalProgress, 0u);
}

TEST(RunnerStress, DistinctKeysComputeConcurrentlyExactlyOnce)
{
    Runner runner(2);
    SpinBarrier barrier(kThreads);
    std::vector<const amnesic::SlicePassResult *> first(kThreads);

    // Thread t owns threshold 3 + t: 16 distinct keys, one program.
    runThreads(kThreads, [&](unsigned t) {
        barrier.arriveAndWait();
        first[t] = &runner.profileAt("cg", 3 + t);
    });

    EXPECT_EQ(runner.slicePassRuns(), kThreads);
    EXPECT_EQ(runner.programBuilds(), 1u);

    // Re-request every key: no new computes, addresses unchanged (the
    // reference-stability half of the contract).
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(first[t], &runner.profileAt("cg", 3 + t));
    EXPECT_EQ(runner.slicePassRuns(), kThreads);
}

TEST(RunnerStress, MixedExperimentsShareBaselinesExactlyOnce)
{
    Runner runner(2);
    SpinBarrier barrier(kThreads);
    std::vector<const ExperimentResult *> baselines(kThreads);
    std::vector<ExperimentResult> owned(kThreads);

    // Half the threads request the shared NoCkpt baseline, half run
    // their own (mutable-state-owning) experiments against it.
    runThreads(kThreads, [&](unsigned t) {
        barrier.arriveAndWait();
        if (t % 2 == 0) {
            baselines[t] = &runner.noCkpt("mg");
        } else {
            ExperimentConfig config;
            config.mode =
                t % 4 == 1 ? BerMode::kCkpt : BerMode::kReCkpt;
            config.numCheckpoints = 5 + t;
            config.sliceThreshold = 0;
            owned[t] = runner.run("mg", config);
            baselines[t] = &runner.noCkpt("mg");
        }
    });

    EXPECT_EQ(runner.noCkptRuns(), 1u);
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(baselines[0], baselines[t]) << "thread " << t;
    for (unsigned t = 1; t < kThreads; t += 2) {
        EXPECT_GT(owned[t].cycles, baselines[0]->cycles)
            << "checkpointing must cost time (thread " << t << ")";
    }

    // The early-published baseline survived all later cache growth.
    EXPECT_EQ(baselines[0], &runner.noCkpt("mg"));
    EXPECT_GT(baselines[0]->cycles, 0u);
}

} // namespace
} // namespace acr::harness
