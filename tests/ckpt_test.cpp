/**
 * @file
 * Tests for the BER substrate: undo-log semantics (log bit, first-update
 * logging), checkpoint establishment and two-checkpoint retention,
 * rollback correctness (bit-exact memory restoration), the Fig. 2
 * suspect-checkpoint scenario, and group-local rollback.
 */

#include <gtest/gtest.h>

#include "ckpt/manager.hh"
#include "fault/storage_fault.hh"
#include "isa/builder.hh"
#include "sim/system.hh"

namespace acr::ckpt
{
namespace
{

// ---------------------------------------------------------------------
// IntervalLog
// ---------------------------------------------------------------------

TEST(IntervalLog, AppendAndLogBit)
{
    IntervalLog log(3);
    EXPECT_EQ(log.interval(), 3u);
    EXPECT_FALSE(log.contains(10));
    log.append({10, 99, 0, nullptr});
    EXPECT_TRUE(log.contains(10));
    EXPECT_EQ(log.totalRecords(), 1u);
    EXPECT_EQ(log.normalRecords(), 1u);
    EXPECT_EQ(log.loggedBytes(), kLogRecordBytes);
    EXPECT_EQ(log.omittedBytes(), 0u);
}

TEST(IntervalLogDeathTest, DoubleLoggingAnAddressPanics)
{
    IntervalLog log(1);
    log.append({10, 1, 0, nullptr});
    EXPECT_DEATH(log.append({10, 2, 0, nullptr}), "already logged");
}

TEST(IntervalLog, RemoveWritersFiltersAndReindexes)
{
    IntervalLog log(1);
    log.append({10, 1, 0, nullptr});
    log.append({11, 2, 1, nullptr});
    log.append({12, 3, 0, nullptr});
    log.removeWriters(0b01);  // drop core 0's records
    EXPECT_EQ(log.totalRecords(), 1u);
    EXPECT_FALSE(log.contains(10));
    EXPECT_TRUE(log.contains(11));
    // Re-logging a removed address is legal again.
    log.append({10, 5, 0, nullptr});
    EXPECT_TRUE(log.contains(10));
}

// ---------------------------------------------------------------------
// Manager rig: a 2-core program storing a counter sweep per iteration.
// ---------------------------------------------------------------------

isa::Program
sweepProgram(unsigned iters, unsigned cells)
{
    // Per iteration: each core writes cells words (value = iter+1) into
    // its own region at 1000 + tid*512, then barriers.
    isa::ProgramBuilder b("sweep");
    b.tid(1);
    b.shli(2, 1, 9);
    b.movi(3, 1000);
    b.add(2, 2, 3);          // region base
    b.movi(4, 0);            // t
    b.movi(5, static_cast<SWord>(iters));
    b.label("outer");
    b.movi(6, 0);            // i
    b.movi(7, static_cast<SWord>(cells));
    b.addi(8, 4, 1);         // value = t + 1
    b.label("inner");
    b.add(9, 2, 6);
    b.store(9, 8);
    b.addi(6, 6, 1);
    b.bltu(6, 7, "inner");
    b.barrier();
    b.addi(4, 4, 1);
    b.bltu(4, 5, "outer");
    b.halt();
    return b.build();
}

struct Rig : cpu::ExecObserver
{
    explicit Rig(Coordination mode, unsigned iters = 6,
                 unsigned cells = 32, Backend backend = Backend::kLog)
        : program(sweepProgram(iters, cells)),
          system(sim::MachineConfig::tableI(2), program),
          manager(CheckpointManager::Config{mode, backend}, system,
                  nullptr, stats)
    {
        system.setObserver(this);
        manager.initialCheckpoint();
    }

    void
    onInstr(const cpu::InstrEvent &e) override
    {
        if (isa::isStore(e.inst->op))
            manager.onStore(e.core, e.addr, e.oldValue);
    }

    /** Run until progress crosses @p target. */
    void
    runUntilProgress(std::uint64_t target)
    {
        while (system.progress() < target && !system.allHalted())
            system.step();
    }

    StatSet stats;
    isa::Program program;
    sim::MulticoreSystem system;
    CheckpointManager manager;
};

TEST(Manager, FirstUpdateLogsOnceAndKeepsOldValue)
{
    Rig rig(Coordination::kGlobal);
    rig.runUntilProgress(400);
    const IntervalLog &log = rig.manager.openLog();
    // Each cell address appears exactly once even after repeated
    // iterations; old values of first updates are the pre-run zeros.
    EXPECT_GT(log.totalRecords(), 0u);
    for (const LogRecord &record : log.records())
        EXPECT_EQ(record.oldValue, 0u)
            << "first update's old value is the initial state";
}

TEST(Manager, EstablishMovesTheLogAndStallsCores)
{
    Rig rig(Coordination::kGlobal);
    rig.runUntilProgress(400);
    auto records = rig.manager.openLog().totalRecords();
    ASSERT_GT(records, 0u);
    Cycle before = rig.system.maxCycle();

    rig.manager.establish();
    EXPECT_EQ(rig.manager.openLog().totalRecords(), 0u);
    EXPECT_EQ(rig.manager.checkpointsEstablished(), 1u);
    EXPECT_EQ(rig.manager.retained().back().log.totalRecords(), records);
    EXPECT_GT(rig.system.maxCycle(), before)
        << "establishment costs time";
    EXPECT_EQ(rig.system.core(0).cycle(), rig.system.core(1).cycle())
        << "global coordination aligns all cores";
    EXPECT_DOUBLE_EQ(rig.stats.get("ckpt.establishments"), 1.0);
    ASSERT_EQ(rig.manager.history().size(), 1u);
    EXPECT_EQ(rig.manager.history()[0].records, records);
}

TEST(Manager, RetainsExactlyTwoCheckpoints)
{
    Rig rig(Coordination::kGlobal, 10);
    for (int i = 0; i < 4; ++i) {
        rig.runUntilProgress(rig.system.progress() + 200);
        rig.manager.establish();
    }
    EXPECT_EQ(rig.manager.retained().size(), 2u);
    EXPECT_EQ(rig.manager.retained().back().index, 4u);
    EXPECT_EQ(rig.manager.retained().front().index, 3u);
    EXPECT_EQ(rig.manager.history().size(), 4u) << "history is unbounded";
}

TEST(Manager, RollbackRestoresMemoryBitExact)
{
    Rig rig(Coordination::kGlobal, 8);
    rig.runUntilProgress(300);
    rig.manager.establish();
    auto reference = rig.system.memory().image();
    auto arch0 = rig.system.core(0).saveArch();

    rig.runUntilProgress(rig.system.progress() + 400);
    ASSERT_NE(rig.system.memory().image(), reference)
        << "execution must have changed memory before rollback";

    Cycle now = rig.system.maxCycle();
    auto outcome = rig.manager.recover(0, now, now + 10);
    EXPECT_EQ(outcome.targetIndex, 1u);
    EXPECT_EQ(outcome.affected, 0b11u);
    EXPECT_EQ(rig.system.memory().image(), reference);
    EXPECT_EQ(rig.system.core(0).saveArch(), arch0);
    EXPECT_GE(rig.system.core(0).cycle(), now + 10);
    EXPECT_DOUBLE_EQ(rig.stats.get("rec.recoveries"), 1.0);
}

TEST(Manager, ReExecutionAfterRollbackReachesSameFinalState)
{
    // Golden run.
    auto program = sweepProgram(6, 32);
    sim::MulticoreSystem golden(sim::MachineConfig::tableI(2), program);
    golden.runToCompletion();
    auto golden_image = golden.memory().image();

    Rig rig(Coordination::kGlobal, 6);
    rig.runUntilProgress(200);
    rig.manager.establish();
    rig.runUntilProgress(500);
    Cycle now = rig.system.maxCycle();
    rig.manager.recover(1, now, now);
    while (!rig.system.allHalted())
        rig.system.step();
    EXPECT_EQ(rig.system.memory().image(), golden_image);
}

TEST(Manager, Fig2SuspectCheckpointIsSkipped)
{
    Rig rig(Coordination::kGlobal, 10);
    rig.runUntilProgress(300);
    rig.manager.establish();  // ckpt 1 (safe)
    auto safe_image = rig.system.memory().image();

    rig.runUntilProgress(rig.system.progress() + 200);
    Cycle error_time = rig.system.maxCycle();  // error occurs here

    rig.runUntilProgress(rig.system.progress() + 100);
    rig.manager.establish();  // ckpt 2: established after the error —
                              // potentially corrupted (Fig. 2)
    rig.runUntilProgress(rig.system.progress() + 100);

    Cycle detect_time = rig.system.maxCycle();
    auto outcome = rig.manager.recover(0, error_time, detect_time);
    EXPECT_EQ(outcome.targetIndex, 1u)
        << "rollback must skip the suspect checkpoint 2";
    EXPECT_EQ(rig.system.memory().image(), safe_image);
}

TEST(Manager, RecoverToMostRecentWhenSafe)
{
    Rig rig(Coordination::kGlobal, 10);
    rig.runUntilProgress(300);
    rig.manager.establish();
    rig.runUntilProgress(rig.system.progress() + 200);
    rig.manager.establish();  // ckpt 2
    auto image2 = rig.system.memory().image();
    rig.runUntilProgress(rig.system.progress() + 150);

    Cycle error_time = rig.system.maxCycle();  // after ckpt 2
    auto outcome = rig.manager.recover(0, error_time, error_time + 5);
    EXPECT_EQ(outcome.targetIndex, 2u);
    EXPECT_EQ(rig.system.memory().image(), image2);
}

TEST(Manager, WasteAndRollbackStatsAccumulate)
{
    Rig rig(Coordination::kGlobal, 8);
    rig.runUntilProgress(300);
    rig.manager.establish();
    rig.runUntilProgress(rig.system.progress() + 200);
    Cycle now = rig.system.maxCycle();
    rig.manager.recover(0, now, now + 50);
    EXPECT_GT(rig.stats.get("rec.wasteCycles"), 0.0);
    EXPECT_GT(rig.stats.get("rec.rollbackCycles"), 0.0);
    EXPECT_GT(rig.stats.get("rec.restoredWords"), 0.0);
}

// ---------------------------------------------------------------------
// Local coordination
// ---------------------------------------------------------------------

TEST(Manager, LocalModeRollsBackOnlyTheFailingGroup)
{
    // The sweep program's threads touch disjoint regions and never
    // share lines, so each core is its own communication group.
    Rig rig(Coordination::kLocal, 8);
    rig.runUntilProgress(300);
    rig.manager.establish();
    rig.runUntilProgress(rig.system.progress() + 300);

    auto arch1_before = rig.system.core(1).saveArch();
    auto image_before = rig.system.memory().image();

    Cycle now = rig.system.maxCycle();
    auto outcome = rig.manager.recover(0, now, now);
    EXPECT_EQ(outcome.affected, 0b01u) << "only core 0's group";
    EXPECT_EQ(rig.system.core(1).saveArch(), arch1_before)
        << "core 1 must be untouched";

    // Core 1's region is untouched; core 0's region rolled back.
    auto image_after = rig.system.memory().image();
    for (Addr a = 1512; a < 1512 + 32; ++a) {
        auto it_b = image_before.find(a);
        auto it_a = image_after.find(a);
        EXPECT_TRUE(it_b != image_before.end() &&
                    it_a != image_after.end() &&
                    it_b->second == it_a->second);
    }
}

TEST(Manager, LocalModeCheckpointsPerGroup)
{
    Rig rig(Coordination::kLocal, 6);
    rig.runUntilProgress(300);
    rig.manager.establish();
    // Two singleton groups coordinated independently.
    EXPECT_DOUBLE_EQ(rig.stats.get("ckpt.coordinationGroups"), 2.0);
}

TEST(Manager, GlobalModeHasOneGroup)
{
    Rig rig(Coordination::kGlobal, 6);
    rig.runUntilProgress(300);
    rig.manager.establish();
    EXPECT_DOUBLE_EQ(rig.stats.get("ckpt.coordinationGroups"), 1.0);
}

// ---------------------------------------------------------------------
// Backend naming
// ---------------------------------------------------------------------

TEST(Backend, NamesRoundTripThroughParse)
{
    for (Backend backend : allBackends()) {
        Backend parsed;
        ASSERT_TRUE(parseBackend(backendName(backend), parsed));
        EXPECT_EQ(parsed, backend);
    }
    Backend unused;
    EXPECT_FALSE(parseBackend("dram", unused));
    EXPECT_FALSE(parseBackend("", unused));
    EXPECT_FALSE(parseBackend("Log", unused)) << "names are lowercase";
}

// ---------------------------------------------------------------------
// Backend conformance: every CheckpointStore must satisfy the manager's
// protocol identically — establishment moves the log and costs time,
// retention keeps exactly two checkpoints, Fig. 2 suspect skipping
// invalidates rollback targets (validFor), and rollback restores memory
// bit-exactly. Only the cost/footprint numbers may differ per medium.
// ---------------------------------------------------------------------

class BackendConformance : public ::testing::TestWithParam<Backend>
{
};

TEST_P(BackendConformance, EstablishMovesTheLogAndCostsTime)
{
    Rig rig(Coordination::kGlobal, 6, 32, GetParam());
    EXPECT_EQ(rig.manager.store().backend(), GetParam());
    rig.runUntilProgress(400);
    auto records = rig.manager.openLog().totalRecords();
    ASSERT_GT(records, 0u);
    Cycle before = rig.system.maxCycle();

    rig.manager.establish();
    EXPECT_EQ(rig.manager.openLog().totalRecords(), 0u);
    EXPECT_EQ(rig.manager.checkpointsEstablished(), 1u);
    EXPECT_EQ(rig.manager.retained().back().log.totalRecords(), records);
    EXPECT_GT(rig.system.maxCycle(), before)
        << "establishment costs time on every medium";
    EXPECT_EQ(rig.system.core(0).cycle(), rig.system.core(1).cycle())
        << "global coordination aligns all cores";
}

TEST_P(BackendConformance, RetainsExactlyTwoCheckpoints)
{
    Rig rig(Coordination::kGlobal, 10, 32, GetParam());
    for (int i = 0; i < 4; ++i) {
        rig.runUntilProgress(rig.system.progress() + 200);
        rig.manager.establish();
    }
    EXPECT_EQ(rig.manager.retained().size(), 2u);
    EXPECT_EQ(rig.manager.retained().back().index, 4u);
    EXPECT_EQ(rig.manager.history().size(), 4u);
}

TEST_P(BackendConformance, RollbackRestoresMemoryBitExact)
{
    Rig rig(Coordination::kGlobal, 8, 32, GetParam());
    rig.runUntilProgress(300);
    rig.manager.establish();
    auto reference = rig.system.memory().image();
    auto arch0 = rig.system.core(0).saveArch();

    rig.runUntilProgress(rig.system.progress() + 400);
    ASSERT_NE(rig.system.memory().image(), reference);

    Cycle now = rig.system.maxCycle();
    auto outcome = rig.manager.recover(0, now, now + 10);
    EXPECT_EQ(outcome.targetIndex, 1u);
    EXPECT_EQ(rig.system.memory().image(), reference);
    EXPECT_EQ(rig.system.core(0).saveArch(), arch0);
    EXPECT_GT(rig.stats.get("rec.rollbackCycles"), 0.0)
        << "rollback reads cost time on every medium";
}

TEST_P(BackendConformance, Fig2SuspectSkipInvalidatesTheCheckpoint)
{
    Rig rig(Coordination::kGlobal, 10, 32, GetParam());
    rig.runUntilProgress(300);
    rig.manager.establish();  // ckpt 1 (safe)
    auto safe_image = rig.system.memory().image();

    rig.runUntilProgress(rig.system.progress() + 200);
    Cycle error_time = rig.system.maxCycle();
    rig.runUntilProgress(rig.system.progress() + 100);
    rig.manager.establish();  // ckpt 2: suspect (after the error)
    rig.runUntilProgress(rig.system.progress() + 100);

    auto outcome =
        rig.manager.recover(0, error_time, rig.system.maxCycle());
    EXPECT_EQ(outcome.targetIndex, 1u);
    EXPECT_EQ(rig.system.memory().image(), safe_image);
    for (const Checkpoint &ckpt : rig.manager.retained())
        if (ckpt.index == 2)
            EXPECT_EQ(ckpt.validFor & outcome.affected, 0u)
                << "the skipped suspect checkpoint is no longer a "
                   "valid target for the rolled-back cores";
}

TEST_P(BackendConformance, ReExecutionAfterRollbackReachesGoldenState)
{
    auto program = sweepProgram(6, 32);
    sim::MulticoreSystem golden(sim::MachineConfig::tableI(2), program);
    golden.runToCompletion();
    auto golden_image = golden.memory().image();

    Rig rig(Coordination::kGlobal, 6, 32, GetParam());
    rig.runUntilProgress(200);
    rig.manager.establish();
    rig.runUntilProgress(500);
    Cycle now = rig.system.maxCycle();
    rig.manager.recover(1, now, now);
    while (!rig.system.allHalted())
        rig.system.step();
    EXPECT_EQ(rig.system.memory().image(), golden_image);
}

TEST_P(BackendConformance, FootprintMatchesTheMediumsCostModel)
{
    Rig rig(Coordination::kGlobal, 6, 32, GetParam());
    rig.runUntilProgress(400);
    rig.manager.establish();
    ASSERT_EQ(rig.manager.history().size(), 1u);
    const IntervalSizes &sizes = rig.manager.history()[0];
    const std::uint64_t arch_per_core =
        CheckpointManager::Config{}.archBytesPerCore;
    ASSERT_GT(sizes.records, 0u);
    EXPECT_EQ(sizes.omittedBytes, 0u)
        << "the rig has no provider, so nothing is amnesic";

    switch (GetParam()) {
      case Backend::kLog:
      case Backend::kNvm:
        // A log stores each record and each core's arch state once.
        EXPECT_EQ(sizes.loggedBytes, sizes.records * kLogRecordBytes);
        EXPECT_EQ(sizes.archBytes, 2 * arch_per_core);
        break;
      case Backend::kReplicated:
        // Every datum lands on all k replicas.
        EXPECT_EQ(sizes.loggedBytes,
                  kReplicaCount * sizes.records * kLogRecordBytes);
        EXPECT_EQ(sizes.archBytes, kReplicaCount * 2 * arch_per_core);
        EXPECT_GT(rig.stats.get("ckpt.replicaBytes"), 0.0);
        break;
    }

    // Medium-specific traffic only shows up on its own medium.
    if (GetParam() == Backend::kNvm) {
        EXPECT_GT(rig.stats.get("nvm.writes"), 0.0);
        EXPECT_GT(rig.stats.get("nvm.persists"), 0.0);
    } else {
        EXPECT_DOUBLE_EQ(rig.stats.get("nvm.writes"), 0.0);
    }
    if (GetParam() != Backend::kReplicated)
        EXPECT_DOUBLE_EQ(rig.stats.get("ckpt.replicaBytes"), 0.0);
}

TEST_P(BackendConformance, AmnesicSupportMatchesTheRecoveryPath)
{
    Rig rig(Coordination::kGlobal, 6, 32, GetParam());
    // Only a store whose recovery rereads stored bytes exclusively
    // (kReplicated) must refuse omission; the log-shaped media accept.
    EXPECT_EQ(rig.manager.store().supportsAmnesic(),
              GetParam() != Backend::kReplicated);
}

// ---------------------------------------------------------------------
// Storage-fault conformance (DESIGN.md §16): every backend must detect
// a corrupted stored datum on read — never serve wrong bytes silently —
// and then escalate to its documented rung: replica retry on
// kReplicated, older-checkpoint retarget for arch corruption on the
// single-copy media, torn-establishment refusal at target selection,
// and a structured unrecoverable outcome once the ladder is exhausted.
// ---------------------------------------------------------------------

/** One hand-built storage-fault event (ordinal 0, full mask). */
fault::StorageFaultPlan
oneEvent(std::uint64_t ckpt_index, fault::StorageFaultKind kind,
         Word xor_mask = 0x40, std::uint64_t pick = 0)
{
    fault::StorageFaultPlan plan;
    plan.events.push_back({ckpt_index, kind, xor_mask, pick, 0});
    return plan;
}

TEST_P(BackendConformance, CorruptStoredRecordIsDetectedOnRestore)
{
    Rig rig(Coordination::kGlobal, 8, 32, GetParam());
    auto initial_image = rig.system.memory().image();

    // The flip lands on a record stored by establishment #1. The
    // error predates that establishment, so ckpt 1 is suspect
    // (Fig. 2), the rollback targets ckpt 0, and the restore must
    // read ckpt 1's stored log — through the corrupted copy.
    auto plan = oneEvent(1, fault::StorageFaultKind::kRecordFlip);
    fault::StorageFaultInjector faults(plan, rig.stats);
    rig.manager.setStorageFaults(&faults);

    rig.runUntilProgress(300);
    Cycle error_time = rig.system.maxCycle();
    rig.runUntilProgress(rig.system.progress() + 100);
    rig.manager.establish();  // ckpt 1: the fault arms here
    rig.runUntilProgress(rig.system.progress() + 200);

    auto outcome =
        rig.manager.recover(0, error_time, rig.system.maxCycle());
    EXPECT_GE(rig.stats.get("ckpt.corruptReads"), 1.0)
        << "the flipped stored record must be detected, not served";
    EXPECT_GT(rig.stats.get("ckpt.integrityChecks"), 0.0);

    if (GetParam() == Backend::kReplicated) {
        // Rung 1: the clean replica heals the read; recovery is
        // bit-exact as if the medium had never failed.
        EXPECT_FALSE(outcome.unrecoverable);
        EXPECT_GT(outcome.replicaSwitches, 0u);
        EXPECT_GT(rig.stats.get("rec.replicaSwitches"), 0.0);
        EXPECT_EQ(outcome.targetIndex, 0u);
        EXPECT_EQ(rig.system.memory().image(), initial_image);
    } else {
        // Single-copy media: a corrupt stored record composes into
        // every older restore path (records apply by prefix), so the
        // ladder is exhausted — a structured verdict, not an abort
        // and never silent wrong data.
        EXPECT_TRUE(outcome.unrecoverable);
        EXPECT_NE(outcome.failureDetail.find("unreadable"),
                  std::string::npos)
            << outcome.failureDetail;
        EXPECT_DOUBLE_EQ(rig.stats.get("rec.unrecoverable"), 1.0);
    }
}

TEST_P(BackendConformance, TornEstablishmentIsRefusedAsATarget)
{
    Rig rig(Coordination::kGlobal, 8, 32, GetParam());
    auto initial_image = rig.system.memory().image();

    auto plan = oneEvent(1, fault::StorageFaultKind::kTornGroup);
    fault::StorageFaultInjector faults(plan, rig.stats);
    rig.manager.setStorageFaults(&faults);

    rig.runUntilProgress(300);
    rig.manager.establish();  // ckpt 1 tears mid-establishment
    rig.runUntilProgress(rig.system.progress() + 200);

    // The error postdates ckpt 1, so ckpt 1 would be the preferred
    // target — but its establishment tore, so target selection must
    // refuse it and fall back to ckpt 0.
    Cycle now = rig.system.maxCycle();
    auto outcome = rig.manager.recover(0, now, now);
    EXPECT_FALSE(outcome.unrecoverable);
    EXPECT_EQ(outcome.targetIndex, 0u)
        << "the torn newest checkpoint must be refused";
    EXPECT_GE(rig.stats.get("ckpt.tornRefusals"), 1.0);
    EXPECT_EQ(rig.system.memory().image(), initial_image);
}

TEST_P(BackendConformance, CorruptArchStateEscalatesPerBackend)
{
    Rig rig(Coordination::kGlobal, 8, 32, GetParam());
    auto initial_image = rig.system.memory().image();
    auto plan = oneEvent(1, fault::StorageFaultKind::kArchFlip);
    fault::StorageFaultInjector faults(plan, rig.stats);
    rig.manager.setStorageFaults(&faults);

    rig.runUntilProgress(300);
    rig.manager.establish();  // ckpt 1: core 0's arch image flips
    auto ckpt1_image = rig.system.memory().image();
    rig.runUntilProgress(rig.system.progress() + 200);

    // The error postdates ckpt 1: the rollback commits to ckpt 1 and
    // only then finds its stored arch state corrupt.
    Cycle now = rig.system.maxCycle();
    auto outcome = rig.manager.recover(0, now, now);
    EXPECT_FALSE(outcome.unrecoverable);
    EXPECT_GE(rig.stats.get("ckpt.corruptReads"), 1.0);

    if (GetParam() == Backend::kReplicated) {
        // Rung 1: the clean replica serves the arch words.
        EXPECT_GT(outcome.replicaSwitches, 0u);
        EXPECT_EQ(outcome.retargets, 0u);
        EXPECT_EQ(outcome.targetIndex, 1u);
        EXPECT_EQ(rig.system.memory().image(), ckpt1_image);
    } else {
        // Rung 2: no second copy — the recovery restarts against the
        // older retained checkpoint (the wider recompute window is
        // the honest price of the narrower medium).
        EXPECT_EQ(outcome.retargets, 1u);
        EXPECT_DOUBLE_EQ(rig.stats.get("rec.retargets"), 1.0);
        EXPECT_EQ(outcome.targetIndex, 0u);
        EXPECT_EQ(rig.system.memory().image(), initial_image);
    }
}

TEST(StorageFaultKinds, MatchEachMediumsFailureModes)
{
    using fault::StorageFaultKind;
    for (Backend backend : allBackends()) {
        const auto kinds = storageFaultKinds(backend);
        const auto has = [&](StorageFaultKind kind) {
            for (StorageFaultKind k : kinds)
                if (k == kind)
                    return true;
            return false;
        };
        // Every medium can flip stored bits or tear an establishment.
        EXPECT_TRUE(has(StorageFaultKind::kRecordFlip));
        EXPECT_TRUE(has(StorageFaultKind::kArchFlip));
        EXPECT_TRUE(has(StorageFaultKind::kTornGroup));
        // Replica loss only exists where replicas do; uncorrectable
        // media reads are the NVM failure mode.
        EXPECT_EQ(has(StorageFaultKind::kReplicaLoss),
                  backend == Backend::kReplicated);
        EXPECT_EQ(has(StorageFaultKind::kUncorrectableRead),
                  backend == Backend::kNvm);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformance,
    ::testing::ValuesIn(allBackends()),
    [](const ::testing::TestParamInfo<Backend> &info) {
        return std::string(backendName(info.param));
    });

} // namespace
} // namespace acr::ckpt
