/**
 * @file
 * Unit tests for MainMemory (functional state) and the DRAM timing
 * model (latency, per-controller bandwidth queues, interleaving).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/dram.hh"
#include "mem/main_memory.hh"

namespace acr::mem
{
namespace
{

TEST(MainMemory, UntouchedWordsReadZero)
{
    MainMemory m;
    EXPECT_EQ(m.read(0), 0u);
    EXPECT_EQ(m.read(123456789), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(MainMemory, WriteReturnsOldValue)
{
    MainMemory m;
    EXPECT_EQ(m.write(10, 5), 0u);
    EXPECT_EQ(m.write(10, 7), 5u);
    EXPECT_EQ(m.read(10), 7u);
}

TEST(MainMemory, SparsePagesAllocateOnDemand)
{
    MainMemory m;
    m.write(0, 1);
    EXPECT_EQ(m.pageCount(), 1u);
    m.write(MainMemory::kPageWords - 1, 1);
    EXPECT_EQ(m.pageCount(), 1u);
    m.write(MainMemory::kPageWords, 1);
    EXPECT_EQ(m.pageCount(), 2u);
    m.write(1ull << 40, 1);
    EXPECT_EQ(m.pageCount(), 3u);
}

TEST(MainMemory, ImageSkipsZeros)
{
    MainMemory m;
    m.write(5, 9);
    m.write(6, 0);  // allocates but stays zero
    auto image = m.image();
    EXPECT_EQ(image.size(), 1u);
    EXPECT_EQ(image.at(5), 9u);
}

TEST(MainMemory, FirstDifferenceFindsTheFirstMismatch)
{
    MainMemory a, b;
    a.write(100, 1);
    b.write(100, 1);
    EXPECT_EQ(a.firstDifference(b), kInvalidAddr);

    b.write(200, 5);
    EXPECT_EQ(a.firstDifference(b), 200u);

    // Zero-valued backed words compare equal to absent words.
    MainMemory c, d;
    c.write(300, 0);
    EXPECT_EQ(c.firstDifference(d), kInvalidAddr);
}

TEST(MainMemory, RandomizedWriteReadAgainstReferenceModel)
{
    MainMemory m;
    std::map<Addr, Word> reference;
    Rng rng(2024);
    for (int i = 0; i < 20000; ++i) {
        Addr addr = rng.below(1 << 16) + (rng.below(4) << 30);
        if (rng.chance(0.7)) {
            Word value = rng.next();
            Word expected_old = reference.count(addr) ? reference[addr]
                                                      : 0;
            EXPECT_EQ(m.write(addr, value), expected_old);
            reference[addr] = value;
        } else {
            Word expected = reference.count(addr) ? reference[addr] : 0;
            EXPECT_EQ(m.read(addr), expected);
        }
    }
}

TEST(Dram, ControllersForFollowsTableI)
{
    EXPECT_EQ(DramConfig::controllersFor(1), 1u);
    EXPECT_EQ(DramConfig::controllersFor(4), 1u);
    EXPECT_EQ(DramConfig::controllersFor(8), 2u);
    EXPECT_EQ(DramConfig::controllersFor(16), 4u);
    EXPECT_EQ(DramConfig::controllersFor(32), 8u);
}

TEST(Dram, SingleAccessPaysLatency)
{
    DramConfig config;
    config.latency = 100;
    config.bytesPerCycle = 64.0;
    config.controllers = 1;
    DramModel dram(config);
    Cycle done = dram.lineRead(0, 1000);
    // One line occupies one cycle of bandwidth at 64 B/cycle.
    EXPECT_EQ(done, 1000 + 1 + 100);
}

TEST(Dram, BandwidthQueuesBackToBackAccesses)
{
    DramConfig config;
    config.latency = 0;
    config.bytesPerCycle = 6.4;  // 10 cycles per 64B line
    config.controllers = 1;
    DramModel dram(config);
    Cycle t1 = dram.lineRead(0, 0);
    Cycle t2 = dram.lineRead(1, 0);
    EXPECT_GT(t2, t1) << "second access must queue behind the first";
    EXPECT_GE(t2, 19u);
    EXPECT_DOUBLE_EQ(dram.counters().queueDelayCycles, 10.0);
}

TEST(Dram, ControllersInterleaveAndDecouple)
{
    DramConfig config;
    config.latency = 0;
    config.bytesPerCycle = 6.4;
    config.controllers = 2;
    DramModel dram(config);
    EXPECT_NE(dram.controllerOf(0), dram.controllerOf(1));
    EXPECT_EQ(dram.controllerOf(0), dram.controllerOf(2));
    // Lines on different controllers don't queue behind each other.
    Cycle t1 = dram.lineRead(0, 0);
    Cycle t2 = dram.lineRead(1, 0);
    EXPECT_EQ(t1, t2);
}

TEST(Dram, WordAccessesAreCheaperThanLines)
{
    DramConfig config;
    config.latency = 0;
    config.bytesPerCycle = 1.0;
    config.controllers = 1;
    DramModel dram(config);
    Cycle word = dram.wordWrite(0, 0);
    dram.reset();
    Cycle line = dram.lineWrite(0, 0);
    EXPECT_LT(word, line);
}

TEST(Dram, CountersTrackTraffic)
{
    DramModel dram(DramConfig{});
    dram.lineRead(0, 0);
    dram.lineWrite(1, 0);
    dram.wordRead(16, 0);
    EXPECT_EQ(dram.counters().reads, 2u);
    EXPECT_EQ(dram.counters().writes, 1u);
    EXPECT_EQ(dram.counters().bytes, 2 * kLineBytes + kWordBytes);

    StatSet stats;
    dram.exportStats(stats, "dram");
    EXPECT_DOUBLE_EQ(stats.get("dram.reads"), 2.0);
    EXPECT_DOUBLE_EQ(stats.get("dram.bytes"),
                     static_cast<double>(2 * kLineBytes + kWordBytes));
}

TEST(Dram, ResetClearsQueuesButKeepsCounters)
{
    DramConfig config;
    config.latency = 0;
    config.bytesPerCycle = 1.0;
    config.controllers = 1;
    DramModel dram(config);
    dram.lineRead(0, 0);
    dram.reset();
    Cycle t = dram.lineRead(0, 0);
    EXPECT_EQ(t, kLineBytes);  // no residual queueing
    EXPECT_EQ(dram.counters().reads, 2u);
}

} // namespace
} // namespace acr::mem
