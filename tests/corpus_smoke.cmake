# Repro-corpus replay, run as a ctest: every *.repro checked in under
# tests/corpus/ is a shrunk torture repro (the `[torture] repro:` line
# a failing campaign printed, minimized by the built-in ddmin) plus the
# oracle verdict it must reproduce. Replaying the corpus on every build
# turns each shrunk repro into a one-file regression test: an engine
# change that alters the verdict — a divergence that disappears
# (silently fixed or masked) or a clean repro that starts diverging —
# fails here with the exact command line to rerun by hand.
#
# Repro format: `flags=<torture args>` and `expect=<verdict>` lines,
# where verdict is clean (exit 0), quarantine (exit 3), divergence
# (exit 4), or unrecoverable (exit 5, storage faults defeated every
# escalation rung) per src/harness/exit_code.hh; an optional
# `stderr_match=<substring>` pins the diagnostic. The extra verdict
# `abort` pins a run that dies on an engine assertion (oracle-off
# configurations keep the manager's hard recomputation assert): any
# abnormal termination passes, a clean/quarantine/divergence exit
# fails, and `stderr_match=` is required to pin *which* assert fired.
#
# Invoke with
#   cmake -DBENCH=<path to torture> -DCORPUS=<tests/corpus>
#         -DOUT=<scratch dir> -P corpus_smoke.cmake

foreach(var BENCH CORPUS OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "corpus_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

file(GLOB repros "${CORPUS}/*.repro")
if(NOT repros)
    message(FATAL_ERROR "no *.repro files under ${CORPUS}")
endif()
list(SORT repros)

foreach(repro IN LISTS repros)
    get_filename_component(name "${repro}" NAME_WE)
    file(STRINGS "${repro}" lines)
    set(flags "")
    set(expect "")
    set(stderr_match "")
    foreach(line IN LISTS lines)
        if(line MATCHES "^flags=(.+)$")
            set(flags "${CMAKE_MATCH_1}")
        elseif(line MATCHES "^expect=(.+)$")
            set(expect "${CMAKE_MATCH_1}")
        elseif(line MATCHES "^stderr_match=(.+)$")
            set(stderr_match "${CMAKE_MATCH_1}")
        endif()
    endforeach()
    if(flags STREQUAL "" OR expect STREQUAL "")
        message(FATAL_ERROR
                "${repro}: needs both flags= and expect= lines")
    endif()

    # Verdict -> exit code, the precedence of harness/exit_code.hh.
    if(expect STREQUAL "clean")
        set(expect_exit 0)
    elseif(expect STREQUAL "quarantine")
        set(expect_exit 3)
    elseif(expect STREQUAL "divergence")
        set(expect_exit 4)
    elseif(expect STREQUAL "unrecoverable")
        set(expect_exit 5)
    elseif(expect STREQUAL "abort")
        # Engine assertion: the process dies abnormally (a signal, which
        # execute_process reports as a message string, or a nonzero
        # abort status — never one of the harness verdict exits).
        set(expect_exit "")
        if(stderr_match STREQUAL "")
            message(FATAL_ERROR
                    "${repro}: verdict 'abort' needs stderr_match= to "
                    "pin which assertion fired")
        endif()
    else()
        message(FATAL_ERROR
                "${repro}: unknown verdict '${expect}' (want clean, "
                "quarantine, divergence, unrecoverable, or abort)")
    endif()

    separate_arguments(args UNIX_COMMAND "${flags}")
    execute_process(
        COMMAND "${BENCH}" ${args}
        OUTPUT_FILE "${OUT}/${name}.txt"
        ERROR_FILE "${OUT}/${name}.stderr"
        RESULT_VARIABLE status)
    if(expect STREQUAL "abort")
        if(status EQUAL 0 OR status EQUAL 3 OR status EQUAL 4 OR
           status EQUAL 5)
            file(READ "${OUT}/${name}.stderr" stderr)
            message(FATAL_ERROR
                    "${name}: expected an engine abort, got a normal "
                    "verdict exit ${status} — the assertion this entry "
                    "pins no longer fires. Rerun by hand:\n"
                    "  torture ${flags}\n${stderr}")
        endif()
    elseif(NOT status EQUAL ${expect_exit})
        file(READ "${OUT}/${name}.stderr" stderr)
        message(FATAL_ERROR
                "${name}: expected verdict '${expect}' (exit "
                "${expect_exit}), got exit ${status} — the engine no "
                "longer reproduces this corpus entry. Rerun by hand:\n"
                "  torture ${flags}\n${stderr}")
    endif()
    if(NOT stderr_match STREQUAL "")
        file(READ "${OUT}/${name}.stderr" stderr)
        string(FIND "${stderr}" "${stderr_match}" found)
        if(found EQUAL -1)
            message(FATAL_ERROR
                    "${name}: verdict matched but the diagnostic "
                    "'${stderr_match}' is gone:\n${stderr}")
        endif()
    endif()
    message(STATUS "corpus: ${name} reproduced verdict '${expect}'")
endforeach()

message(STATUS "corpus smoke: every saved repro reproduced its verdict")
