/**
 * @file
 * Deterministic edge-case tests: detection latency at the checkpoint
 * period (Fig. 2's worst case, forcing two-interval rollbacks with
 * recomputation), slicer size-cap opacity, operand-buffer pressure
 * falling back to logging, and result arithmetic.
 */

#include <gtest/gtest.h>

#include "acr/acr_engine.hh"
#include "acr/slice_pass.hh"
#include "harness/ber_runtime.hh"
#include "harness/runner.hh"
#include "isa/builder.hh"
#include "workloads/kernel_spec.hh"

namespace acr
{
namespace
{

TEST(Edge, MaxDetectionLatencyRollsBackTwoIntervals)
{
    // Detection latency == the full checkpoint period: most detections
    // see a suspect checkpoint established after the error and must
    // skip it (Fig. 2). Transparency is still verified in-run.
    harness::Runner runner(4);
    harness::ExperimentConfig config;
    config.mode = harness::BerMode::kReCkpt;
    config.numCheckpoints = 12;
    config.numErrors = 3;
    config.detectionLatencyFraction = 1.0;
    config.sliceThreshold = 0;
    auto result = runner.run("is", config);
    EXPECT_EQ(result.recoveries +
                  static_cast<std::uint64_t>(
                      result.stats.get("fault.dropped")),
              3u);
}

TEST(Edge, ZeroDetectionLatencyAlwaysUsesNewestCheckpoint)
{
    harness::Runner runner(4);
    harness::ExperimentConfig config;
    config.mode = harness::BerMode::kReCkpt;
    config.numCheckpoints = 12;
    config.numErrors = 2;
    config.detectionLatencyFraction = 0.0;
    config.sliceThreshold = 0;
    auto result = runner.run("dc", config);
    EXPECT_EQ(result.recoveries, 2u);
}

TEST(Edge, SizeCapTruncatesVeryLongChainsIntoSuffixSlices)
{
    // A 201-op dependent chain exceeds the tracker's size cap (128):
    // the engine captures the intermediate value at the cap as an
    // input operand, leaving a 71-op suffix slice (movi + 128 addis
    // collapse into the captured leaf; addis 129..199 remain). Replay
    // stays bit-exact because the captured intermediate is recorded.
    isa::ProgramBuilder b("deep");
    b.movi(1, 3);
    for (int i = 0; i < 200; ++i)
        b.addi(1, 1, 1);
    b.movi(2, 100);
    b.store(2, 1);
    b.halt();
    auto program = b.build();

    slice::SlicePolicyConfig strict;
    strict.lengthThreshold = 64;  // below the 71-op suffix
    auto r64 = amnesic::SlicePass::run(
        program, sim::MachineConfig::tableI(1), strict);
    EXPECT_EQ(r64.hintedStores, 0u);

    slice::SlicePolicyConfig loose;
    loose.lengthThreshold = 80;  // admits the suffix
    auto r80 = amnesic::SlicePass::run(
        program, sim::MachineConfig::tableI(1), loose);
    EXPECT_EQ(r80.hintedStores, 1u);
}

TEST(Edge, TinyOperandBufferFallsBackToLogging)
{
    // An operand buffer of 1 word cannot hold the 2-leaf captures the
    // kernels produce: every capture is rejected and ACR degenerates to
    // the plain baseline — correctly, without omissions.
    workloads::KernelSpec spec;
    spec.name = "pressure";
    spec.outerIters = 4;
    spec.phases = {{16, 4}};
    spec.comm = workloads::Comm::kNone;
    workloads::WorkloadParams params;
    params.threads = 2;
    auto program = workloads::buildKernel(spec, params);
    auto machine = sim::MachineConfig::tableI(2);
    auto pass = amnesic::SlicePass::run(program, machine,
                                        slice::SlicePolicyConfig{});

    StatSet stats;
    sim::MulticoreSystem system(machine, pass.program);
    slice::SliceEngine slicer(2);
    amnesic::AcrConfig acr_config;
    acr_config.operandBufferWords = 1;
    amnesic::AcrEngine acr(acr_config, slicer, stats);
    ckpt::CheckpointManager manager({}, system, &acr, stats);
    manager.initialCheckpoint();

    struct Observer : cpu::ExecObserver
    {
        ckpt::CheckpointManager *manager;
        amnesic::AcrEngine *acr;
        slice::SliceEngine *slicer;
        void
        onInstr(const cpu::InstrEvent &e) override
        {
            if (isa::isStore(e.inst->op)) {
                manager->onStore(e.core, e.addr, e.oldValue);
                acr->onStoreRetired(e);
                return;
            }
            slicer->observe(e);
        }
    } observer;
    observer.manager = &manager;
    observer.acr = &acr;
    observer.slicer = &slicer;
    system.setObserver(&observer);
    system.runToCompletion();

    EXPECT_EQ(manager.openLog().amnesicRecords(), 0u);
    acr.exportStats();  // flush the deferred hot counters
    EXPECT_GT(stats.get("acr.operandBufferRejections"), 0.0);
}

TEST(Edge, TinyAddrMapLimitsOmissions)
{
    workloads::KernelSpec spec;
    spec.name = "mapcap";
    spec.outerIters = 4;
    spec.phases = {{64, 4}};
    spec.comm = workloads::Comm::kNone;
    workloads::WorkloadParams params;
    params.threads = 1;
    auto program = workloads::buildKernel(spec, params);
    auto machine = sim::MachineConfig::tableI(1);
    auto pass = amnesic::SlicePass::run(program, machine,
                                        slice::SlicePolicyConfig{});

    StatSet stats;
    sim::MulticoreSystem system(machine, pass.program);
    slice::SliceEngine slicer(1);
    amnesic::AcrConfig acr_config;
    acr_config.addrMapCapacity = 4;  // far below 64 unique addresses
    amnesic::AcrEngine acr(acr_config, slicer, stats);

    struct Observer : cpu::ExecObserver
    {
        amnesic::AcrEngine *acr;
        slice::SliceEngine *slicer;
        void
        onInstr(const cpu::InstrEvent &e) override
        {
            if (isa::isStore(e.inst->op)) {
                acr->onStoreRetired(e);
                return;
            }
            slicer->observe(e);
        }
    } observer;
    observer.acr = &acr;
    observer.slicer = &slicer;
    system.setObserver(&observer);
    system.runToCompletion();

    acr.exportStats();  // flush the deferred hot counters
    EXPECT_GT(stats.get("acr.addrMapOverflows"), 0.0);
    EXPECT_LE(acr.addrMap().size(), 4u);
}

TEST(Edge, OverheadArithmetic)
{
    harness::ExperimentResult result;
    result.cycles = 150;
    result.energyPj = 300.0;
    result.edp = 45000.0;
    EXPECT_DOUBLE_EQ(result.timeOverheadPct(100), 50.0);
    EXPECT_DOUBLE_EQ(result.energyOverheadPct(200.0), 50.0);
    EXPECT_DOUBLE_EQ(result.edpReductionPct(90000.0), 50.0);
}

TEST(Edge, ConfigLabelsMatchThePaper)
{
    harness::ExperimentConfig config;
    config.mode = harness::BerMode::kNoCkpt;
    EXPECT_EQ(config.label(), "NoCkpt");
    config.mode = harness::BerMode::kCkpt;
    EXPECT_EQ(config.label(), "Ckpt_NE");
    config.numErrors = 2;
    EXPECT_EQ(config.label(), "Ckpt_E");
    config.mode = harness::BerMode::kReCkpt;
    config.coordination = ckpt::Coordination::kLocal;
    EXPECT_EQ(config.label(), "ReCkpt_E,Loc");
    config.numErrors = 0;
    EXPECT_EQ(config.label(), "ReCkpt_NE,Loc");
}

TEST(Edge, RecomputeAwarePlacementStoresNoMore)
{
    harness::Runner runner(4);
    harness::ExperimentConfig uniform;
    uniform.mode = harness::BerMode::kReCkpt;
    uniform.numCheckpoints = 12;
    uniform.sliceThreshold = 0;
    auto u = runner.run("is", uniform);

    auto aware_cfg = uniform;
    aware_cfg.placement = harness::PlacementPolicy::kRecomputeAware;
    auto a = runner.run("is", aware_cfg);

    // Deferral may only shift checkpoints into richer regions; stored
    // bytes must not grow materially.
    EXPECT_LE(a.ckptBytesStored, u.ckptBytesStored * 11 / 10);
}

} // namespace
} // namespace acr
