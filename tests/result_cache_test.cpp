/**
 * @file
 * ResultCache tests (DESIGN.md §11): content-addressed keying is
 * position- and bench-independent, persisted entries round-trip
 * byte-exactly, quarantined results are never cached, and every
 * corruption mode — torn tail, flipped byte, stale cache or wire
 * version, garbage header — degrades to a miss (recompute), never a
 * crash. The end-to-end warm-replay and cross-bench determinism
 * contract is exercised against real bench binaries by
 * tests/cache_smoke.cmake.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/result_cache.hh"

namespace
{

using namespace acr;
using namespace acr::harness;

std::vector<GridPoint>
tinyGrid()
{
    std::vector<GridPoint> points;
    ExperimentConfig config;
    config.mode = BerMode::kNoCkpt;
    points.push_back({"is", config, 2});
    config.mode = BerMode::kCkpt;
    points.push_back({"is", config, 2});
    config.mode = BerMode::kReCkpt;
    points.push_back({"is", config, 2});
    return points;
}

ExperimentResult
fakeResult(std::uint64_t cycles)
{
    ExperimentResult result;
    result.cycles = cycles;
    result.energyPj = static_cast<double>(cycles) * 2.0;
    result.edp = static_cast<double>(cycles) * 3.0;
    result.checkpointsEstablished = 7;
    return result;
}

std::string
dump(const ExperimentResult &result)
{
    return wire::encodeResult(result).dump();
}

std::string
cachePath(const std::string &tag)
{
    return testing::TempDir() + "acr_cache_" + tag + "_" +
           std::to_string(::getpid()) + ".ndjson";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

TEST(PointHash, ContentAddressedAndSensitiveToEveryAxis)
{
    const auto grid = tinyGrid();

    // Same content, same hash — regardless of containing vector or
    // "bench": the hash covers only (workload, config, threads).
    GridPoint copy = grid[0];
    EXPECT_EQ(wire::pointHash(grid[0]), wire::pointHash(copy));

    // Distinct configs, workloads, and thread counts all separate.
    EXPECT_NE(wire::pointHash(grid[0]), wire::pointHash(grid[1]));
    copy.workload = "mg";
    EXPECT_NE(wire::pointHash(grid[0]), wire::pointHash(copy));
    copy = grid[0];
    copy.threads = 4;
    EXPECT_NE(wire::pointHash(grid[0]), wire::pointHash(copy));
}

TEST(ResultCacheTest, FreshInsertThenReopenServesByContent)
{
    const auto grid = tinyGrid();
    const auto path = cachePath("fresh");
    std::remove(path.c_str());

    {
        ResultCache cache;
        cache.open(path);
        ASSERT_TRUE(cache.isOpen());
        EXPECT_EQ(cache.size(), 0u);
        EXPECT_EQ(cache.find(grid[0]), nullptr);
        cache.insert(grid[0], fakeResult(100));
        cache.insert(grid[2], fakeResult(300));
        EXPECT_EQ(cache.inserts(), 2u);
        EXPECT_EQ(cache.misses(), 1u);

        // Hits serve the exact stored payload.
        const auto *hit = cache.find(grid[0]);
        ASSERT_NE(hit, nullptr);
        EXPECT_EQ(dump(*hit), dump(fakeResult(100)));
        EXPECT_EQ(cache.hits(), 1u);
    }

    ResultCache reloaded;
    reloaded.open(path);
    EXPECT_EQ(reloaded.size(), 2u);
    // Content addressing: lookup works from a freshly built, distinct
    // GridPoint object (different grid position, different "bench").
    auto probe = tinyGrid()[2];
    const auto *hit = reloaded.find(probe);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(dump(*hit), dump(fakeResult(300)));
    EXPECT_EQ(reloaded.find(tinyGrid()[1]), nullptr);
    std::remove(path.c_str());
}

TEST(ResultCacheTest, DuplicateInsertIsANoOp)
{
    const auto grid = tinyGrid();
    const auto path = cachePath("dup");
    std::remove(path.c_str());

    ResultCache cache;
    cache.open(path);
    cache.insert(grid[0], fakeResult(100));
    const auto bytes = readFile(path).size();
    cache.insert(grid[0], fakeResult(100));
    EXPECT_EQ(cache.inserts(), 1u);
    EXPECT_EQ(readFile(path).size(), bytes);
    std::remove(path.c_str());
}

TEST(ResultCacheTest, QuarantinedResultsAreNeverCached)
{
    const auto grid = tinyGrid();
    const auto path = cachePath("quarantine");
    std::remove(path.c_str());

    {
        ResultCache cache;
        cache.open(path);
        cache.insert(grid[0],
                     ExperimentResult::quarantined(3, "signal 9"));
        EXPECT_EQ(cache.inserts(), 0u);
        EXPECT_EQ(cache.size(), 0u);
    }
    ResultCache reloaded;
    reloaded.open(path);
    EXPECT_EQ(reloaded.find(grid[0]), nullptr);
    std::remove(path.c_str());
}

TEST(ResultCacheTest, TornFinalLineIsDroppedAndTruncated)
{
    const auto grid = tinyGrid();
    const auto path = cachePath("torn");
    std::remove(path.c_str());

    {
        ResultCache cache;
        cache.open(path);
        cache.insert(grid[0], fakeResult(100));
        cache.insert(grid[1], fakeResult(200));
    }
    // Chop the trailing newline and half the final entry.
    const auto content = readFile(path);
    ASSERT_GT(content.size(), 40u);
    writeFile(path, content.substr(0, content.size() - 40));

    {
        ResultCache reloaded;
        reloaded.open(path);
        EXPECT_EQ(reloaded.size(), 1u);
        EXPECT_NE(reloaded.find(grid[0]), nullptr);
        EXPECT_EQ(reloaded.find(grid[1]), nullptr);
        // The file was truncated to the durable prefix, so a fresh
        // append lands on a clean line boundary.
        reloaded.insert(grid[1], fakeResult(200));
    }
    ResultCache full;
    full.open(path);
    EXPECT_EQ(full.size(), 2u);
    EXPECT_NE(full.find(grid[1]), nullptr);
    std::remove(path.c_str());
}

TEST(ResultCacheTest, FlippedByteSkipsOnlyThatEntry)
{
    const auto grid = tinyGrid();
    const auto path = cachePath("flip");
    std::remove(path.c_str());

    {
        ResultCache cache;
        cache.open(path);
        cache.insert(grid[0], fakeResult(100));
        cache.insert(grid[1], fakeResult(200));
    }
    // Corrupt a byte inside the first entry (the second line) only.
    auto content = readFile(path);
    const auto header_end = content.find('\n');
    ASSERT_NE(header_end, std::string::npos);
    const auto flip = content.find("\"type\":\"entry\"", header_end);
    ASSERT_NE(flip, std::string::npos);
    content[flip + 9] = 'X';  // "entry" -> "Xntry"
    writeFile(path, content);

    ResultCache reloaded;
    reloaded.open(path);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_EQ(reloaded.find(grid[0]), nullptr);  // served as a miss
    const auto *hit = reloaded.find(grid[1]);    // neighbor survives
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(dump(*hit), dump(fakeResult(200)));
    std::remove(path.c_str());
}

TEST(ResultCacheTest, KeyPointMismatchIsSkipped)
{
    const auto grid = tinyGrid();
    const auto path = cachePath("keymismatch");
    std::remove(path.c_str());

    {
        ResultCache cache;
        cache.open(path);
        cache.insert(grid[0], fakeResult(100));
    }
    // Re-key the entry: content-addressing must detect that the key
    // no longer hashes the point and refuse to serve it.
    auto content = readFile(path);
    const auto key_at = content.find("\"key\":");
    ASSERT_NE(key_at, std::string::npos);
    content[key_at + 6] =
        content[key_at + 6] == '1' ? '2' : '1';  // first key digit
    writeFile(path, content);

    ResultCache reloaded;
    reloaded.open(path);
    EXPECT_EQ(reloaded.size(), 0u);
    EXPECT_EQ(reloaded.find(grid[0]), nullptr);
    std::remove(path.c_str());
}

TEST(ResultCacheTest, StaleWireVersionStartsCold)
{
    const auto grid = tinyGrid();
    const auto path = cachePath("stalewire");
    std::remove(path.c_str());

    std::string content;
    {
        ResultCache cache;
        cache.open(path);
        cache.insert(grid[0], fakeResult(100));
        content = readFile(path);
    }
    // Pretend the file was written by a build speaking a different
    // wire version: every entry must be served as a miss, not decoded.
    const std::string current =
        "\"wirev\":" + std::to_string(wire::kVersion);
    const auto at = content.find(current);
    ASSERT_NE(at, std::string::npos);
    content.replace(at, current.size(),
                    "\"wirev\":" + std::to_string(wire::kVersion + 1));
    writeFile(path, content);

    {
        ResultCache reloaded;
        reloaded.open(path);
        EXPECT_EQ(reloaded.size(), 0u);
        EXPECT_EQ(reloaded.find(grid[0]), nullptr);
        // The cold cache re-headed the file for this build and keeps
        // working as a fresh cache.
        reloaded.insert(grid[0], fakeResult(100));
    }
    ResultCache fresh;
    fresh.open(path);
    EXPECT_EQ(fresh.size(), 1u);
    EXPECT_NE(fresh.find(grid[0]), nullptr);
    std::remove(path.c_str());
}

TEST(ResultCacheTest, WriteFailureDegradesInsteadOfDying)
{
    const auto grid = tinyGrid();
    const auto path = cachePath("enospc");
    std::remove(path.c_str());

    {
        ResultCache cache;
        cache.open(path);
        cache.insert(grid[0], fakeResult(100));
        const auto durable_bytes = readFile(path).size();

        // The next append hits (injected) ENOSPC: the cache must warn
        // and degrade, not fatal() — a full disk may not kill a sweep.
        cache.failNextWriteForTest();
        cache.insert(grid[1], fakeResult(200));
        EXPECT_TRUE(cache.degraded());
        EXPECT_TRUE(cache.isOpen());
        EXPECT_EQ(cache.inserts(), 1u);  // only the durable one
        EXPECT_EQ(readFile(path).size(), durable_bytes);

        // Loaded/previous entries still serve, and the failed insert
        // still deduplicates in memory for this process.
        EXPECT_NE(cache.find(grid[0]), nullptr);
        EXPECT_NE(cache.find(grid[1]), nullptr);

        // Further inserts are silent no-ops on disk, not crashes.
        cache.insert(grid[2], fakeResult(300));
        EXPECT_EQ(cache.inserts(), 1u);
        EXPECT_EQ(readFile(path).size(), durable_bytes);
    }

    // The on-disk file holds exactly the entries appended before the
    // failure — a clean durable prefix a later run can still load.
    ResultCache reloaded;
    reloaded.open(path);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_NE(reloaded.find(grid[0]), nullptr);
    EXPECT_EQ(reloaded.find(grid[1]), nullptr);
    std::remove(path.c_str());
}

TEST(ResultCacheTest, GarbageHeaderStartsCold)
{
    const auto grid = tinyGrid();
    const auto path = cachePath("garbage");
    writeFile(path, "this is not a cache file\nat all\n");

    ResultCache cache;
    cache.open(path);
    EXPECT_TRUE(cache.isOpen());
    EXPECT_EQ(cache.size(), 0u);
    cache.insert(grid[0], fakeResult(100));
    EXPECT_EQ(cache.inserts(), 1u);
    std::remove(path.c_str());
}

} // namespace
