#!/usr/bin/env bash
# End-to-end check of the distributed sweep fabric (DESIGN.md §15),
# run as a ctest and mirrored by the CI distributed-smoke job. Against
# a bench binary and the torture bench, it drives a loopback
# --listen coordinator with real --connect worker processes and
# verifies the BenchMain determinism contract under transport chaos:
#
#   * a clean fleet (including a worker that joins seconds late and is
#     dealt the remaining work) renders byte-identically to --jobs=1;
#   * a fleet suffering a SIGKILLed worker, a torn mid-frame close, a
#     garbled payload, and a stalled peer — all mid-sweep — still
#     renders byte-identically, the lost points re-dealt to survivors;
#   * a point that crashes every worker that touches it is quarantined:
#     FAILED table cell, exit 3, never a hang;
#   * a warm --cache rerun is served 100% coordinator-side (0 misses,
#     no worker needed);
#   * a coordinator killed mid-sweep whose --journal tail is then torn
#     mid-record restarts with --resume on the same port, the torn
#     point re-dealt to workers that reconnect on their own;
#   * exit codes keep their precedence (0 < 3 quarantine < 4 oracle
#     divergence) when transport-fault quarantines and oracle
#     divergences coexist in one distributed sweep.
#
# Invoke with
#   distributed_smoke.sh <fig06 bench> <torture bench> <scratch dir>

set -u

BENCH=${1:?usage: distributed_smoke.sh BENCH TORTURE OUT}
TORTURE=${2:?usage: distributed_smoke.sh BENCH TORTURE OUT}
OUT=${3:?usage: distributed_smoke.sh BENCH TORTURE OUT}

WORKLOADS=is,mg

rm -rf "$OUT"
mkdir -p "$OUT"

cleanup() {
    local pids
    pids=$(jobs -p)
    [ -n "$pids" ] && kill -9 $pids 2>/dev/null
    return 0
}
trap cleanup EXIT

die() {
    echo "distributed smoke: FAIL: $*" >&2
    exit 1
}

# Poll a coordinator's stderr for the "[net] listening on" line (port 0
# resolves to a kernel-picked port) and echo the port.
wait_port() {
    local errfile=$1 i port
    for i in $(seq 1 200); do
        port=$(sed -n \
            's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
            "$errfile" 2>/dev/null | head -n1)
        if [ -n "$port" ]; then
            echo "$port"
            return 0
        fi
        sleep 0.05
    done
    return 1
}

expect_identical() {
    cmp -s "$1" "$2" || die "$3: output differs ($1 vs $2)"
}

expect_match() {
    grep -Eq "$2" "$1" || die "$3: '$1' does not match '$2'"
}

expect_exit() {
    local pid=$1 want=$2 what=$3 got=0
    wait "$pid" || got=$?
    [ "$got" -eq "$want" ] || die "$what: exited $got (expected $want)"
}

# --- Reference: the single-process run everything must match ---
"$BENCH" --workloads=$WORKLOADS --jobs=1 \
    > "$OUT/reference.txt" 2> "$OUT/reference.err" \
    || die "--jobs=1 reference failed"

# --- Clean fleet + late joiner: the coordinator starts alone (inside
#     its join grace), the first worker arrives two seconds late and
#     is dealt the entire sweep; two more pile in after it ---
"$BENCH" --workloads=$WORKLOADS --listen=127.0.0.1:0 --heartbeat=1 \
    > "$OUT/clean.txt" 2> "$OUT/clean.err" &
coord=$!
port=$(wait_port "$OUT/clean.err") || die "clean: no listening line"
sleep 2
workers=()
for i in 1 2 3; do
    "$BENCH" --workloads=$WORKLOADS --connect=127.0.0.1:$port \
        --heartbeat=1 2> "$OUT/clean_w$i.err" &
    workers+=($!)
done
expect_exit $coord 0 "clean coordinator"
for i in 0 1 2; do
    expect_exit "${workers[$i]}" 0 "clean worker $((i + 1))"
done
expect_identical "$OUT/reference.txt" "$OUT/clean.txt" \
    "clean distributed sweep"
expect_match "$OUT/clean.err" "via --listen" "distributed timing line"
expect_match "$OUT/clean.err" "3 worker join" "late joiners all joined"

# --- Chaos fleet: SIGKILL one worker mid-sweep, tear another's frame
#     in half, garble a third's result payload, stall a fourth — the
#     survivors absorb every reclaimed point, output identical.
#     --heartbeat=30 keeps the fault ordinals deterministic (frame 1
#     is the hello, results start at 2; no pong ever intervenes) ---
"$BENCH" --workloads=$WORKLOADS --listen=127.0.0.1:0 --heartbeat=30 \
    --point-timeout=60 --retries=3 \
    > "$OUT/chaos.txt" 2> "$OUT/chaos.err" &
coord=$!
port=$(wait_port "$OUT/chaos.err") || die "chaos: no listening line"
ACR_NET_FAULT=torn=3 "$BENCH" --workloads=$WORKLOADS \
    --connect=127.0.0.1:$port 2> "$OUT/chaos_torn.err" &
torn_w=$!
ACR_NET_FAULT=garble=4 "$BENCH" --workloads=$WORKLOADS \
    --connect=127.0.0.1:$port 2> "$OUT/chaos_garble.err" &
garble_w=$!
ACR_NET_FAULT=stall=2:1 "$BENCH" --workloads=$WORKLOADS \
    --connect=127.0.0.1:$port 2> "$OUT/chaos_stall.err" &
stall_w=$!
"$BENCH" --workloads=$WORKLOADS --connect=127.0.0.1:$port \
    2> "$OUT/chaos_victim.err" &
victim=$!
sleep 0.4
kill -9 $victim 2>/dev/null
expect_exit $coord 0 "chaos coordinator"
expect_exit $torn_w 0 "torn worker (should reconnect and finish)"
expect_exit $garble_w 0 "garbled worker (should survive the drop)"
expect_exit $stall_w 0 "stalled worker"
wait $victim 2>/dev/null  # SIGKILLed; any status is fine
expect_identical "$OUT/reference.txt" "$OUT/chaos.txt" \
    "chaos distributed sweep"
expect_match "$OUT/chaos.err" "connection loss" \
    "chaos supervision report"
expect_match "$OUT/chaos.err" "retr" "chaos retry report"

# --- Exhausted retries: a point that kills every worker that touches
#     it is quarantined — FAILED cell, exit 3, the sweep completes
#     around it on the surviving worker ---
"$BENCH" --workloads=$WORKLOADS --listen=127.0.0.1:0 --heartbeat=1 \
    --retries=1 > "$OUT/quarantine.txt" 2> "$OUT/quarantine.err" &
coord=$!
port=$(wait_port "$OUT/quarantine.err") \
    || die "quarantine: no listening line"
workers=()
for i in 1 2 3; do
    ACR_TEST_CRASH_INDEX=1 "$BENCH" --workloads=$WORKLOADS \
        --connect=127.0.0.1:$port --heartbeat=1 \
        2> "$OUT/quarantine_w$i.err" &
    workers+=($!)
done
expect_exit $coord 3 "quarantine coordinator"
for w in "${workers[@]}"; do
    wait "$w" 2>/dev/null  # two die at the crash point, one survives
done
expect_match "$OUT/quarantine.txt" "FAILED" "quarantined table cell"
expect_match "$OUT/quarantine.err" "quarantin" "quarantine report"

# --- Result cache: a cold distributed run populates --cache; the warm
#     rerun is served 100% coordinator-side with no worker at all ---
"$BENCH" --workloads=$WORKLOADS --listen=127.0.0.1:0 --heartbeat=1 \
    --cache="$OUT/results.cache" \
    > "$OUT/cold.txt" 2> "$OUT/cold.err" &
coord=$!
port=$(wait_port "$OUT/cold.err") || die "cold cache: no listening line"
"$BENCH" --workloads=$WORKLOADS --connect=127.0.0.1:$port \
    --heartbeat=1 2> "$OUT/cold_w1.err" &
w1=$!
expect_exit $coord 0 "cold cache coordinator"
expect_exit $w1 0 "cold cache worker"
expect_identical "$OUT/reference.txt" "$OUT/cold.txt" \
    "cold cached distributed sweep"
"$BENCH" --workloads=$WORKLOADS --listen=127.0.0.1:0 --heartbeat=1 \
    --cache="$OUT/results.cache" \
    > "$OUT/warm.txt" 2> "$OUT/warm.err" \
    || die "warm cache rerun failed"
expect_identical "$OUT/reference.txt" "$OUT/warm.txt" \
    "warm cached rerun"
expect_match "$OUT/warm.err" "cache: [0-9]+ hit\(s\), 0 miss\(es\)" \
    "warm rerun must be 100% cache hits"

# --- Torn journal across a coordinator restart: the coordinator dies
#     after two fsync'd completions, the journal tail is then torn
#     mid-record, and the --resume restart on the same port serves the
#     one durable record while the workers — still inside their
#     reconnect window — re-join on their own and rerun the rest ---
ACR_TEST_COORD_EXIT_AFTER=2 \
    "$BENCH" --workloads=$WORKLOADS --listen=127.0.0.1:0 --heartbeat=2 \
    --journal="$OUT/sweep.journal" \
    > "$OUT/half.txt" 2> "$OUT/half.err" &
coord=$!
port=$(wait_port "$OUT/half.err") || die "journal: no listening line"
workers=()
for i in 1 2; do
    "$BENCH" --workloads=$WORKLOADS --connect=127.0.0.1:$port \
        --heartbeat=2 2> "$OUT/journal_w$i.err" &
    workers+=($!)
done
expect_exit $coord 7 "journaling coordinator (test-hook exit)"
size=$(stat -c %s "$OUT/sweep.journal")
head -c $((size - 40)) "$OUT/sweep.journal" > "$OUT/sweep.torn" \
    && mv "$OUT/sweep.torn" "$OUT/sweep.journal"
"$BENCH" --workloads=$WORKLOADS --listen=127.0.0.1:$port --heartbeat=2 \
    --journal="$OUT/sweep.journal" --resume \
    > "$OUT/resumed.txt" 2> "$OUT/resumed.err" &
coord=$!
expect_exit $coord 0 "resumed coordinator"
for i in 0 1; do
    expect_exit "${workers[$i]}" 0 "reconnecting worker $((i + 1))"
done
expect_identical "$OUT/reference.txt" "$OUT/resumed.txt" \
    "torn-journal resumed distributed sweep"
expect_match "$OUT/resumed.err" "torn" "torn-record warning"
expect_match "$OUT/resumed.err" "journal: served 1 of" \
    "resume must serve only the durable prefix"

# --- Exit-code precedence under transport faults: an oracle
#     divergence (exit 4) must render byte-identically over TCP and
#     outrank a transport-fault quarantine (exit 3) in the same sweep ---
campaign="--workloads=is --modes=reckpt --coords=global --lats=0.5
          --errors=8 --checkpoints=5 --seeds=2 --oracle=on"
ACR_TEST_CORRUPT_RECOVERY=1 "$TORTURE" $campaign --jobs=1 \
    > "$OUT/oracle_ref.txt" 2> "$OUT/oracle_ref.err"
[ $? -eq 4 ] || die "oracle --jobs=1 reference: expected exit 4"

"$TORTURE" $campaign --listen=127.0.0.1:0 --heartbeat=1 \
    > "$OUT/oracle_dist.txt" 2> "$OUT/oracle_dist.err" &
coord=$!
port=$(wait_port "$OUT/oracle_dist.err") \
    || die "oracle: no listening line"
workers=()
for i in 1 2; do
    ACR_TEST_CORRUPT_RECOVERY=1 "$TORTURE" $campaign \
        --connect=127.0.0.1:$port --heartbeat=1 \
        2> "$OUT/oracle_w$i.err" &
    workers+=($!)
done
expect_exit $coord 4 "distributed oracle divergence"
for i in 0 1; do
    expect_exit "${workers[$i]}" 0 "oracle worker $((i + 1))"
done
expect_identical "$OUT/oracle_ref.txt" "$OUT/oracle_dist.txt" \
    "oracle divergence over TCP"

"$TORTURE" $campaign --listen=127.0.0.1:0 --heartbeat=1 --retries=0 \
    > "$OUT/mixed.txt" 2> "$OUT/mixed.err" &
coord=$!
port=$(wait_port "$OUT/mixed.err") || die "mixed: no listening line"
workers=()
for i in 1 2 3; do
    ACR_TEST_CORRUPT_RECOVERY=1 ACR_TEST_CRASH_INDEX=0 \
        "$TORTURE" $campaign --connect=127.0.0.1:$port --heartbeat=1 \
        2> "$OUT/mixed_w$i.err" &
    workers+=($!)
done
expect_exit $coord 4 "mixed sweep (divergence must outrank quarantine)"
for w in "${workers[@]}"; do
    wait "$w" 2>/dev/null  # the crash-point workers die by design
done
expect_match "$OUT/mixed.err" "quarantin" \
    "mixed sweep quarantine report"

echo "distributed smoke: chaos, quarantine, cache, torn journal," \
     "and exit precedence all hold over TCP" >&2
