/**
 * @file
 * Tests for the hierarchical second-level checkpoint tier (Sec. II-A's
 * "first level in a hierarchical checkpointing framework"): promotion
 * cadence, snapshot contents, catastrophic restore, and integration
 * with the BER runtime.
 */

#include <gtest/gtest.h>

#include "ckpt/secondary.hh"
#include "harness/runner.hh"
#include "isa/builder.hh"

namespace acr::ckpt
{
namespace
{

isa::Program
counterProgram(unsigned iters)
{
    isa::ProgramBuilder b("counter");
    b.movi(1, 0);
    b.movi(2, static_cast<SWord>(iters));
    b.movi(3, 9000);
    b.label("loop");
    b.addi(1, 1, 1);
    b.store(3, 1);
    b.bltu(1, 2, "loop");
    b.halt();
    return b.build();
}

TEST(SecondaryTier, PromotionCadence)
{
    StatSet stats;
    SecondaryConfig config;
    config.promotionPeriod = 3;
    SecondaryTier tier(config, stats);
    EXPECT_FALSE(tier.duePromotion(0));
    EXPECT_FALSE(tier.duePromotion(1));
    EXPECT_FALSE(tier.duePromotion(2));
    EXPECT_TRUE(tier.duePromotion(3));
    EXPECT_FALSE(tier.duePromotion(4));
    EXPECT_TRUE(tier.duePromotion(6));

    config.promotionPeriod = 0;
    SecondaryTier disabled(config, stats);
    EXPECT_FALSE(disabled.duePromotion(4));
}

TEST(SecondaryTier, PromoteCapturesAConsistentSnapshot)
{
    StatSet stats;
    SecondaryTier tier(SecondaryConfig{}, stats);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(2),
                                counterProgram(100));
    system.step();

    Cycle done = tier.promote(system, 1, system.maxCycle());
    EXPECT_GT(done, system.maxCycle()) << "storage writes take time";
    ASSERT_NE(tier.latest(), nullptr);
    EXPECT_EQ(tier.latest()->checkpointIndex, 1u);
    EXPECT_EQ(tier.latest()->image, system.memory().image());
    EXPECT_EQ(tier.latest()->arch.size(), 2u);
    EXPECT_GT(tier.latest()->bytes(), 0u);
    EXPECT_DOUBLE_EQ(stats.get("secondary.promotions"), 1.0);
}

TEST(SecondaryTier, RestoreWithoutPromotionFails)
{
    StatSet stats;
    SecondaryTier tier(SecondaryConfig{}, stats);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(1),
                                counterProgram(10));
    EXPECT_FALSE(tier.restore(system, 0).has_value());
}

TEST(SecondaryTier, CatastrophicRestoreReproducesTheFinalState)
{
    // Golden run.
    auto program = counterProgram(3000);
    sim::MulticoreSystem golden(sim::MachineConfig::tableI(2), program);
    golden.runToCompletion();
    auto golden_image = golden.memory().image();

    StatSet stats;
    SecondaryTier tier(SecondaryConfig{}, stats);
    sim::MulticoreSystem system(sim::MachineConfig::tableI(2), program);

    // Run a while, promote, run further, then lose the node entirely.
    for (int i = 0; i < 3; ++i)
        system.step();
    tier.promote(system, 1, system.maxCycle());
    auto promoted_image = system.memory().image();
    for (int i = 0; i < 4; ++i)
        system.step();

    // "Memory loss": scribble over everything.
    system.memory().clear();
    system.memory().write(9000, 0xdeadbeef);

    auto resumed = tier.restore(system, system.maxCycle());
    ASSERT_TRUE(resumed.has_value());
    EXPECT_EQ(system.memory().image(), promoted_image);

    system.runToCompletion();
    EXPECT_EQ(system.memory().image(), golden_image)
        << "re-execution from the storage snapshot reaches the "
           "error-free final state";
}

TEST(SecondaryTier, RuntimeIntegrationPromotesOnSchedule)
{
    harness::Runner runner(4);
    harness::ExperimentConfig config;
    config.mode = harness::BerMode::kReCkpt;
    config.numCheckpoints = 12;
    config.secondaryPeriod = 4;
    config.sliceThreshold = 0;
    auto result = runner.run("dc", config);

    double promotions = result.stats.get("secondary.promotions");
    EXPECT_GE(promotions, 2.0);
    EXPECT_LE(promotions,
              static_cast<double>(result.checkpointsEstablished) / 4 + 1);
    EXPECT_GT(result.stats.get("secondary.bytesWritten"), 0.0);
}

} // namespace
} // namespace acr::ckpt
