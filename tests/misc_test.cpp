/**
 * @file
 * Additional coverage: full-pipeline arithmetic corner cases, cache
 * inclusion on L2 eviction, zero-input slices, large-machine stress,
 * and secondary-tier + trace interplay with scaled problems.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "harness/runner.hh"
#include "isa/builder.hh"
#include "sim/system.hh"
#include "slice/instance.hh"

namespace acr
{
namespace
{

TEST(MiscCpu, DivisionCornersThroughThePipeline)
{
    isa::ProgramBuilder b("div");
    b.movi(1, 42);
    b.movi(2, 0);
    b.divu(3, 1, 2);   // 42 / 0 == 0
    b.remu(4, 1, 2);   // 42 % 0 == 42
    b.movi(5, -8);
    b.movi(6, 3);
    b.sra(7, 5, 6);    // -8 >> 3 == -1 (arithmetic)
    b.movi(8, 900);
    b.store(8, 3);
    b.store(8, 4, 1);
    b.store(8, 7, 2);
    b.halt();
    sim::MulticoreSystem sys(sim::MachineConfig::tableI(1), b.build());
    sys.runToCompletion();
    EXPECT_EQ(sys.memory().read(900), 0u);
    EXPECT_EQ(sys.memory().read(901), 42u);
    EXPECT_EQ(sys.memory().read(902), ~Word{0});
}

TEST(MiscCache, L2EvictionEnforcesInclusionOnL1)
{
    cache::HierarchyConfig hier;
    hier.l1d.sizeBytes = 2 * kLineBytes;  // 2 lines, 8-way -> 1 set?
    hier.l1d.ways = 2;
    hier.l2.sizeBytes = 4 * kLineBytes;
    hier.l2.ways = 2;
    cache::CacheSystem sys(1, hier, mem::DramConfig{});

    // Touch enough distinct lines to force L2 evictions; the evicted
    // line must leave L1 too (the write-back path invalidates it).
    for (Addr a = 0; a < 64 * kWordsPerLine; a += kWordsPerLine)
        sys.dataAccess(0, a, true, 0);
    for (LineId line : sys.l1d(0).dirtyLines()) {
        EXPECT_TRUE(sys.l2(0).contains(line) || sys.l1d(0).isDirty(line));
    }
    // Flush drains every dirty line without double counting.
    auto flush = sys.flushCores(0b1, 0);
    EXPECT_GT(flush.lines, 0u);
    EXPECT_EQ(sys.dirtyLineCount(0), 0u);
}

TEST(MiscSlice, ZeroInputSliceReplays)
{
    // movi-only slice: constants need no captured operands.
    slice::StaticSlice s;
    s.code.push_back({isa::Opcode::kMovi, 77, slice::kNoSrc,
                      slice::kNoSrc});
    s.code.push_back({isa::Opcode::kMuli, 3, 0, slice::kNoSrc});
    s.numInputs = 0;
    slice::SliceRepository repo;
    auto id = repo.intern(std::move(s));
    slice::OperandBufferAccounting buf(4);
    auto inst = slice::SliceInstance::create(id, {}, buf);
    ASSERT_NE(inst, nullptr);
    slice::ReplayCost cost;
    EXPECT_EQ(inst->replay(repo, &cost), 231u);
    EXPECT_EQ(cost.operandReads, 0u);
    EXPECT_EQ(buf.liveWords(), 0u);
}

TEST(MiscStress, ThirtyTwoCoreRunWithErrorsAndLocalCoordination)
{
    harness::Runner runner(32);
    harness::ExperimentConfig config;
    config.mode = harness::BerMode::kReCkpt;
    config.coordination = ckpt::Coordination::kLocal;
    config.numCheckpoints = 10;
    config.numErrors = 2;
    config.sliceThreshold = 0;
    auto result = runner.run("mg", config);
    EXPECT_EQ(result.recoveries +
                  static_cast<std::uint64_t>(
                      result.stats.get("fault.dropped")),
              2u);
    EXPECT_GT(result.ckptBytesOmitted, 0u);
}

TEST(MiscStress, ScaledProblemKeepsInvariants)
{
    harness::Runner runner(4, /*scale=*/2);
    harness::ExperimentConfig config;
    config.mode = harness::BerMode::kReCkpt;
    config.numCheckpoints = 10;
    config.numErrors = 1;
    config.sliceThreshold = 0;
    auto small = harness::Runner(4, 1).run("dc", config);
    auto big = runner.run("dc", config);
    EXPECT_GT(big.ckptBytesStored + big.ckptBytesOmitted,
              small.ckptBytesStored + small.ckptBytesOmitted);
}

TEST(MiscHarness, NoCkptModeIgnoresErrorKnobs)
{
    // NoCkpt is the clean baseline: no checkpoints, no recoveries,
    // regardless of other knobs.
    harness::Runner runner(2);
    auto result = runner.noCkpt("cg");
    EXPECT_EQ(result.checkpointsEstablished, 0u);
    EXPECT_EQ(result.recoveries, 0u);
    EXPECT_EQ(result.ckptBytesStored, 0u);
    EXPECT_TRUE(result.history.empty());
}

TEST(MiscHarness, ThresholdZeroResolvesPerWorkload)
{
    EXPECT_EQ(harness::Runner::defaultThreshold("is"), 5u);
    EXPECT_EQ(harness::Runner::defaultThreshold("bt"), 10u);
    EXPECT_EQ(harness::Runner::defaultThreshold("cg"), 10u);
}

TEST(MiscHarness, StrictAddrMapRetentionStillTransparent)
{
    // The strict two-interval retention reading must stay correct —
    // it only reduces omissions, never breaks recovery.
    harness::Runner runner(4);
    harness::ExperimentConfig strict;
    strict.mode = harness::BerMode::kReCkpt;
    strict.numCheckpoints = 15;
    strict.numErrors = 2;
    strict.addrMapRetention = 2;
    strict.sliceThreshold = 0;
    auto strict_run = runner.run("is", strict);

    auto loose = strict;
    loose.addrMapRetention = 0;
    auto loose_run = runner.run("is", loose);

    EXPECT_LE(strict_run.ckptBytesOmitted, loose_run.ckptBytesOmitted)
        << "age expiry can only reduce omission opportunities";
}

} // namespace
} // namespace acr
