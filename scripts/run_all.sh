#!/bin/sh
# Build, test, and regenerate every table/figure of the paper, capturing
# the outputs the repo's EXPERIMENTS.md is based on.
set -e

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
    [ -x "$b" ] || continue
    echo "===== $b =====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
done
